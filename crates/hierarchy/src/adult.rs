//! The published Adult-data-set VGHs (paper §VI; hierarchies adopted from
//! Fung et al. \[7\] and the anonymization literature's standard Adult
//! taxonomy).
//!
//! The quasi-identifier order matches the paper's: the |QID|-sweep
//! experiments (Figs. 6–7) take the top-q attributes of
//! `{age, workclass, education, marital status, occupation, race, sex,
//! native country}`.
//!
//! The continuous `age` hierarchy follows §VI: 4 levels, equi-width leaf
//! intervals of 8 units. We use the domain `[17, 113)` (Adult ages span
//! 17–90) with fanouts 2×2×3, giving 12 leaves of width 8 and
//! `normFactor = 96`.

use crate::{IntervalHierarchy, TaxSpec, Taxonomy, Vgh};

/// The eight Adult quasi-identifier attributes, in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdultAttribute {
    /// Continuous age (17–90).
    Age,
    /// Employer class (8 values).
    Workclass,
    /// Education level (16 values).
    Education,
    /// Marital status (7 values).
    MaritalStatus,
    /// Occupation (14 values).
    Occupation,
    /// Race (5 values).
    Race,
    /// Sex (2 values).
    Sex,
    /// Native country (41 values).
    NativeCountry,
}

/// The paper's quasi-identifier priority order (top-q sweeps use prefixes).
pub const ADULT_QID_ORDER: [AdultAttribute; 8] = [
    AdultAttribute::Age,
    AdultAttribute::Workclass,
    AdultAttribute::Education,
    AdultAttribute::MaritalStatus,
    AdultAttribute::Occupation,
    AdultAttribute::Race,
    AdultAttribute::Sex,
    AdultAttribute::NativeCountry,
];

impl AdultAttribute {
    /// Attribute name as it appears in the UCI schema.
    pub fn name(self) -> &'static str {
        match self {
            AdultAttribute::Age => "age",
            AdultAttribute::Workclass => "workclass",
            AdultAttribute::Education => "education",
            AdultAttribute::MaritalStatus => "marital-status",
            AdultAttribute::Occupation => "occupation",
            AdultAttribute::Race => "race",
            AdultAttribute::Sex => "sex",
            AdultAttribute::NativeCountry => "native-country",
        }
    }

    /// Builds this attribute's VGH.
    pub fn vgh(self) -> Vgh {
        match self {
            AdultAttribute::Age => Vgh::Continuous(
                IntervalHierarchy::equi_width("age", 17.0, 113.0, &[2, 2, 3])
                    .expect("static definition is valid"),
            ),
            AdultAttribute::Workclass => Vgh::Categorical(workclass()),
            AdultAttribute::Education => Vgh::Categorical(education()),
            AdultAttribute::MaritalStatus => Vgh::Categorical(marital_status()),
            AdultAttribute::Occupation => Vgh::Categorical(occupation()),
            AdultAttribute::Race => Vgh::Categorical(race()),
            AdultAttribute::Sex => Vgh::Categorical(sex()),
            AdultAttribute::NativeCountry => Vgh::Categorical(native_country()),
        }
    }
}

/// All eight VGHs in [`ADULT_QID_ORDER`].
pub fn adult_vghs() -> Vec<Vgh> {
    ADULT_QID_ORDER.iter().map(|a| a.vgh()).collect()
}

fn leaves(labels: &[&str]) -> Vec<TaxSpec> {
    labels.iter().map(|l| TaxSpec::leaf(*l)).collect()
}

fn workclass() -> Taxonomy {
    let spec = TaxSpec::node(
        "ANY",
        vec![
            TaxSpec::leaf("Private"),
            TaxSpec::node(
                "Self-Employed",
                leaves(&["Self-emp-not-inc", "Self-emp-inc"]),
            ),
            TaxSpec::node("Government", leaves(&["Federal-gov", "Local-gov", "State-gov"])),
            TaxSpec::node("Unpaid", leaves(&["Without-pay", "Never-worked"])),
        ],
    );
    Taxonomy::from_spec("workclass", &spec).expect("static definition is valid")
}

fn education() -> Taxonomy {
    let spec = TaxSpec::node(
        "ANY",
        vec![
            TaxSpec::node(
                "Elementary",
                leaves(&["Preschool", "1st-4th", "5th-6th", "7th-8th"]),
            ),
            TaxSpec::node(
                "Secondary",
                vec![
                    TaxSpec::node("Junior-Secondary", leaves(&["9th", "10th"])),
                    TaxSpec::node("Senior-Secondary", leaves(&["11th", "12th", "HS-grad"])),
                ],
            ),
            TaxSpec::node(
                "Higher-Education",
                vec![
                    TaxSpec::leaf("Some-college"),
                    TaxSpec::node("Associate", leaves(&["Assoc-voc", "Assoc-acdm"])),
                    TaxSpec::node(
                        "University",
                        vec![
                            TaxSpec::leaf("Bachelors"),
                            TaxSpec::node(
                                "Grad-School",
                                leaves(&["Masters", "Prof-school", "Doctorate"]),
                            ),
                        ],
                    ),
                ],
            ),
        ],
    );
    Taxonomy::from_spec("education", &spec).expect("static definition is valid")
}

fn marital_status() -> Taxonomy {
    let spec = TaxSpec::node(
        "ANY",
        vec![
            TaxSpec::node(
                "Married",
                leaves(&[
                    "Married-civ-spouse",
                    "Married-AF-spouse",
                    "Married-spouse-absent",
                ]),
            ),
            TaxSpec::node(
                "Previously-Married",
                leaves(&["Divorced", "Separated", "Widowed"]),
            ),
            TaxSpec::leaf("Never-married"),
        ],
    );
    Taxonomy::from_spec("marital-status", &spec).expect("static definition is valid")
}

fn occupation() -> Taxonomy {
    let spec = TaxSpec::node(
        "ANY",
        vec![
            TaxSpec::node(
                "White-Collar",
                leaves(&[
                    "Exec-managerial",
                    "Prof-specialty",
                    "Adm-clerical",
                    "Sales",
                    "Tech-support",
                ]),
            ),
            TaxSpec::node(
                "Blue-Collar",
                leaves(&[
                    "Craft-repair",
                    "Machine-op-inspct",
                    "Handlers-cleaners",
                    "Transport-moving",
                    "Farming-fishing",
                ]),
            ),
            TaxSpec::node(
                "Service",
                leaves(&[
                    "Other-service",
                    "Priv-house-serv",
                    "Protective-serv",
                    "Armed-Forces",
                ]),
            ),
        ],
    );
    Taxonomy::from_spec("occupation", &spec).expect("static definition is valid")
}

fn race() -> Taxonomy {
    let spec = TaxSpec::node(
        "ANY",
        vec![
            TaxSpec::leaf("White"),
            TaxSpec::node(
                "Non-White",
                leaves(&["Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]),
            ),
        ],
    );
    Taxonomy::from_spec("race", &spec).expect("static definition is valid")
}

fn sex() -> Taxonomy {
    Taxonomy::flat("sex", ["Male", "Female"]).expect("static definition is valid")
}

fn native_country() -> Taxonomy {
    let spec = TaxSpec::node(
        "ANY",
        vec![
            TaxSpec::node(
                "North-America",
                leaves(&[
                    "United-States",
                    "Canada",
                    "Puerto-Rico",
                    "Outlying-US(Guam-USVI-etc)",
                    "Mexico",
                    "Cuba",
                    "Jamaica",
                    "Haiti",
                    "Dominican-Republic",
                    "Guatemala",
                    "Honduras",
                    "Nicaragua",
                    "El-Salvador",
                    "Trinadad&Tobago",
                ]),
            ),
            TaxSpec::node("South-America", leaves(&["Columbia", "Ecuador", "Peru"])),
            TaxSpec::node(
                "Europe",
                leaves(&[
                    "England",
                    "Germany",
                    "Greece",
                    "Italy",
                    "Poland",
                    "Portugal",
                    "Ireland",
                    "France",
                    "Hungary",
                    "Scotland",
                    "Yugoslavia",
                    "Holand-Netherlands",
                ]),
            ),
            TaxSpec::node(
                "Asia",
                leaves(&[
                    "Cambodia",
                    "India",
                    "Japan",
                    "China",
                    "Iran",
                    "Philippines",
                    "Vietnam",
                    "Laos",
                    "Taiwan",
                    "Thailand",
                    "South",
                    "Hong",
                ]),
            ),
        ],
    );
    Taxonomy::from_spec("native-country", &spec).expect("static definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_sizes_match_adult() {
        let sizes: Vec<(AdultAttribute, usize)> = vec![
            (AdultAttribute::Workclass, 8),
            (AdultAttribute::Education, 16),
            (AdultAttribute::MaritalStatus, 7),
            (AdultAttribute::Occupation, 14),
            (AdultAttribute::Race, 5),
            (AdultAttribute::Sex, 2),
            (AdultAttribute::NativeCountry, 41),
        ];
        for (attr, expected) in sizes {
            let vgh = attr.vgh();
            let tax = vgh.as_taxonomy().unwrap();
            assert_eq!(tax.leaf_count(), expected, "{}", attr.name());
        }
    }

    #[test]
    fn age_hierarchy_shape() {
        let vgh = AdultAttribute::Age.vgh();
        let h = vgh.as_intervals().unwrap();
        assert_eq!(h.leaf_count(), 12);
        assert_eq!(h.height(), 3); // 4 levels counting the root
        assert_eq!(h.norm_factor(), 96.0);
        // Every Adult age (17..=90) maps to a leaf.
        for age in 17..=90 {
            assert!(h.leaf_for(age as f64).is_ok(), "age {age}");
        }
    }

    #[test]
    fn qid_order_has_eight_attributes() {
        let vghs = adult_vghs();
        assert_eq!(vghs.len(), 8);
        assert_eq!(vghs[0].name(), "age");
        assert_eq!(vghs[4].name(), "occupation");
        assert_eq!(vghs[7].name(), "native-country");
    }

    #[test]
    fn education_depth_reaches_four_levels() {
        let vgh = AdultAttribute::Education.vgh();
        let tax = vgh.as_taxonomy().unwrap();
        assert_eq!(tax.height(), 4); // ANY → Higher-Ed → University → Grad-School → Masters
        let masters = tax.node_by_label("Masters").unwrap();
        assert_eq!(tax.label(tax.generalize(masters, 1)), "Grad-School");
    }

    #[test]
    fn all_taxonomies_have_unique_labels() {
        // from_spec would have panicked on duplicates; spot-check lookups.
        for attr in ADULT_QID_ORDER {
            if let Some(tax) = attr.vgh().as_taxonomy() {
                for pos in 0..tax.leaf_count() as u32 {
                    let label = tax.label(tax.leaf_node(pos)).to_string();
                    assert_eq!(tax.leaf_position(&label).unwrap(), pos);
                }
            }
        }
    }
}
