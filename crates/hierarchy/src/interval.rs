//! Interval hierarchies for continuous attributes.
//!
//! The paper's continuous VGHs (§VI: "The hierarchy that we used consists
//! of 4 levels and equi-width leaf nodes cover 8-unit intervals") are
//! balanced trees of half-open intervals. Custom unbalanced trees (like
//! Fig. 1's Work Hrs hierarchy) are supported via [`IntervalSpec`].

use crate::{HierarchyError, NodeId};

/// Declarative interval-tree specification.
#[derive(Clone, Debug)]
pub struct IntervalSpec {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
    /// Child intervals (must tile `[lo, hi)` in order); empty for leaves.
    pub children: Vec<IntervalSpec>,
}

impl IntervalSpec {
    /// A leaf interval.
    pub fn leaf(lo: f64, hi: f64) -> Self {
        IntervalSpec {
            lo,
            hi,
            children: Vec::new(),
        }
    }

    /// An internal interval with children.
    pub fn node(lo: f64, hi: f64, children: Vec<IntervalSpec>) -> Self {
        IntervalSpec { lo, hi, children }
    }
}

/// An immutable interval hierarchy. Node 0 is the root (the full domain).
#[derive(Clone, Debug)]
pub struct IntervalHierarchy {
    name: String,
    los: Vec<f64>,
    his: Vec<f64>,
    parents: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depths: Vec<u32>,
    /// Leaf slot range below each node (DFS-contiguous, like taxonomies).
    leaf_ranges: Vec<(u32, u32)>,
    /// Leaf slot → node id, ordered by interval position.
    leaf_nodes: Vec<NodeId>,
    height: u32,
}

impl IntervalHierarchy {
    /// Builds a balanced equi-width hierarchy: the domain `[min, max)` is
    /// split by `fanouts\[0\]`, each child by `fanouts\[1\]`, and so on.
    ///
    /// `equi_width("age", 17.0, 113.0, &[2, 2, 3])` yields a 4-level tree
    /// whose 12 leaves cover 8-unit intervals.
    pub fn equi_width(
        name: impl Into<String>,
        min: f64,
        max: f64,
        fanouts: &[usize],
    ) -> Result<Self, HierarchyError> {
        if min.partial_cmp(&max) != Some(std::cmp::Ordering::Less) {
            return Err(HierarchyError::Invalid(format!(
                "empty domain [{min}, {max})"
            )));
        }
        if fanouts.iter().any(|&f| f < 2) {
            return Err(HierarchyError::Invalid("fanouts must be >= 2".into()));
        }
        fn split(lo: f64, hi: f64, fanouts: &[usize]) -> IntervalSpec {
            match fanouts.split_first() {
                None => IntervalSpec::leaf(lo, hi),
                Some((&f, rest)) => {
                    let width = (hi - lo) / f as f64;
                    let children = (0..f)
                        .map(|i| {
                            let clo = lo + i as f64 * width;
                            let chi = if i == f - 1 { hi } else { lo + (i + 1) as f64 * width };
                            split(clo, chi, rest)
                        })
                        .collect();
                    IntervalSpec::node(lo, hi, children)
                }
            }
        }
        Self::from_spec(name, &split(min, max, fanouts))
    }

    /// Builds from an explicit (possibly unbalanced) specification.
    pub fn from_spec(
        name: impl Into<String>,
        spec: &IntervalSpec,
    ) -> Result<Self, HierarchyError> {
        let mut h = IntervalHierarchy {
            name: name.into(),
            los: Vec::new(),
            his: Vec::new(),
            parents: Vec::new(),
            children: Vec::new(),
            depths: Vec::new(),
            leaf_ranges: Vec::new(),
            leaf_nodes: Vec::new(),
            height: 0,
        };
        h.build(spec, None, 0)?;
        Ok(h)
    }

    fn build(
        &mut self,
        spec: &IntervalSpec,
        parent: Option<NodeId>,
        depth: u32,
    ) -> Result<NodeId, HierarchyError> {
        if spec.lo.partial_cmp(&spec.hi) != Some(std::cmp::Ordering::Less) {
            return Err(HierarchyError::Invalid(format!(
                "empty interval [{}, {})",
                spec.lo, spec.hi
            )));
        }
        // Children must tile the parent exactly, in order.
        if !spec.children.is_empty() {
            let mut cursor = spec.lo;
            for c in &spec.children {
                if (c.lo - cursor).abs() > 1e-9 {
                    return Err(HierarchyError::Invalid(format!(
                        "children do not tile parent at {cursor}"
                    )));
                }
                cursor = c.hi;
            }
            if (cursor - spec.hi).abs() > 1e-9 {
                return Err(HierarchyError::Invalid(format!(
                    "children end at {cursor}, parent at {}",
                    spec.hi
                )));
            }
        }

        let id = self.los.len() as NodeId;
        self.los.push(spec.lo);
        self.his.push(spec.hi);
        self.parents.push(parent);
        self.children.push(Vec::new());
        self.depths.push(depth);
        self.leaf_ranges.push((0, 0));
        self.height = self.height.max(depth);

        if spec.children.is_empty() {
            let pos = self.leaf_nodes.len() as u32;
            self.leaf_nodes.push(id);
            self.leaf_ranges[id as usize] = (pos, pos + 1);
        } else {
            let lo = self.leaf_nodes.len() as u32;
            for c in &spec.children {
                let child = self.build(c, Some(id), depth + 1)?;
                self.children[id as usize].push(child);
            }
            let hi = self.leaf_nodes.len() as u32;
            self.leaf_ranges[id as usize] = (lo, hi);
        }
        Ok(id)
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root node (full domain).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Domain bounds `[min, max)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.los[0], self.his[0])
    }

    /// Domain width — the paper's `normFactor` for normalized Euclidean
    /// distance (98 for the `[1, 99)` Work Hrs example).
    pub fn norm_factor(&self) -> f64 {
        self.his[0] - self.los[0]
    }

    /// Interval `[lo, hi)` of a node.
    pub fn bounds(&self, id: NodeId) -> (f64, f64) {
        (self.los[id as usize], self.his[id as usize])
    }

    /// Parent of a node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parents[id as usize]
    }

    /// Children of a node.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id as usize]
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: NodeId) -> u32 {
        self.depths[id as usize]
    }

    /// Maximum depth.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// `true` iff the node is a leaf interval.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.children[id as usize].is_empty()
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.los.len()
    }

    /// Number of leaf intervals.
    pub fn leaf_count(&self) -> usize {
        self.leaf_nodes.len()
    }

    /// The leaf interval containing `v` (domain membership required).
    pub fn leaf_for(&self, v: f64) -> Result<NodeId, HierarchyError> {
        let (min, max) = self.domain();
        if !(v >= min && v < max) {
            return Err(HierarchyError::OutOfDomain(v));
        }
        let mut cur = self.root();
        while !self.is_leaf(cur) {
            let next = self.children[cur as usize]
                .iter()
                .copied()
                .find(|&c| v >= self.los[c as usize] && v < self.his[c as usize]);
            cur = next.expect("children tile parent, so one contains v");
        }
        Ok(cur)
    }

    /// Ancestor `levels_up` levels toward the root (saturating).
    pub fn generalize(&self, id: NodeId, levels_up: u32) -> NodeId {
        let mut cur = id;
        for _ in 0..levels_up {
            match self.parents[cur as usize] {
                Some(p) => cur = p,
                None => break,
            }
        }
        cur
    }

    /// Ancestor at exactly `depth` (requires `depth ≤ depth(id)`).
    pub fn ancestor_at_depth(&self, id: NodeId, depth: u32) -> NodeId {
        let d = self.depths[id as usize];
        debug_assert!(depth <= d);
        self.generalize(id, d - depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age() -> IntervalHierarchy {
        IntervalHierarchy::equi_width("age", 17.0, 113.0, &[2, 2, 3]).unwrap()
    }

    #[test]
    fn equi_width_structure() {
        let h = age();
        assert_eq!(h.leaf_count(), 12);
        assert_eq!(h.height(), 3);
        assert_eq!(h.norm_factor(), 96.0);
        // Leaves are 8-unit intervals.
        for slot in 0..12u32 {
            let id = h.leaf_nodes[slot as usize];
            let (lo, hi) = h.bounds(id);
            assert!((hi - lo - 8.0).abs() < 1e-9, "leaf width at slot {slot}");
        }
    }

    #[test]
    fn leaf_for_locates_values() {
        let h = age();
        let leaf = h.leaf_for(17.0).unwrap();
        assert_eq!(h.bounds(leaf), (17.0, 25.0));
        let leaf = h.leaf_for(36.0).unwrap();
        assert_eq!(h.bounds(leaf), (33.0, 41.0));
        let leaf = h.leaf_for(112.9).unwrap();
        assert_eq!(h.bounds(leaf).1, 113.0);
    }

    #[test]
    fn out_of_domain_rejected() {
        let h = age();
        assert!(h.leaf_for(16.99).is_err());
        assert!(h.leaf_for(113.0).is_err());
    }

    #[test]
    fn generalize_widens_interval() {
        let h = age();
        let leaf = h.leaf_for(36.0).unwrap();
        let mid = h.generalize(leaf, 1);
        let (lo, hi) = h.bounds(mid);
        assert!(lo <= 33.0 && hi >= 41.0 && (hi - lo - 24.0).abs() < 1e-9);
        assert_eq!(h.generalize(leaf, 10), h.root());
    }

    #[test]
    fn custom_unbalanced_spec() {
        // The paper's Fig. 1 Work Hrs hierarchy:
        // ANY [1-99) → { [1-37) → { [1-35), [35-37) }, [37-99) }
        let spec = IntervalSpec::node(
            1.0,
            99.0,
            vec![
                IntervalSpec::node(
                    1.0,
                    37.0,
                    vec![IntervalSpec::leaf(1.0, 35.0), IntervalSpec::leaf(35.0, 37.0)],
                ),
                IntervalSpec::leaf(37.0, 99.0),
            ],
        );
        let h = IntervalHierarchy::from_spec("work-hrs", &spec).unwrap();
        assert_eq!(h.leaf_count(), 3);
        assert_eq!(h.norm_factor(), 98.0);
        assert_eq!(h.bounds(h.leaf_for(36.0).unwrap()), (35.0, 37.0));
        assert_eq!(h.bounds(h.leaf_for(50.0).unwrap()), (37.0, 99.0));
    }

    #[test]
    fn gap_in_children_rejected() {
        let spec = IntervalSpec::node(
            0.0,
            10.0,
            vec![IntervalSpec::leaf(0.0, 4.0), IntervalSpec::leaf(5.0, 10.0)],
        );
        assert!(IntervalHierarchy::from_spec("gap", &spec).is_err());
    }

    #[test]
    fn short_children_rejected() {
        let spec = IntervalSpec::node(0.0, 10.0, vec![IntervalSpec::leaf(0.0, 4.0)]);
        assert!(IntervalHierarchy::from_spec("short", &spec).is_err());
    }

    #[test]
    fn degenerate_interval_rejected() {
        assert!(IntervalHierarchy::equi_width("x", 5.0, 5.0, &[2]).is_err());
        assert!(IntervalHierarchy::equi_width("x", 0.0, 10.0, &[1]).is_err());
    }
}
