//! # pprl-hierarchy — value generalization hierarchies
//!
//! Anonymization replaces precise attribute values by *generalizations*
//! drawn from a Value Generalization Hierarchy (VGH, paper §II Fig. 1):
//! taxonomy trees for categorical attributes (`Masters → Grad School →
//! University → ANY`) and interval trees for continuous ones
//! (`36 → [35-37) → [35-99) → ANY`).
//!
//! The blocking step's machinery is built on one observation (paper §IV):
//! a generalized value `v` pins the original value into its
//! **specialization set** `specSet(v)` — the leaves below a taxonomy node,
//! or the interval covered by an interval node. Everything downstream
//! (slack distances, expected distances) is arithmetic over these sets.
//!
//! Taxonomy leaves are numbered in depth-first order so that every node
//! covers a *contiguous leaf range*; specialization-set sizes and
//! intersections are O(1) range arithmetic instead of set operations.

mod adult;
mod interval;
mod strings;
mod taxonomy;
mod vgh;

pub use adult::{adult_vghs, AdultAttribute, ADULT_QID_ORDER};
pub use interval::{IntervalHierarchy, IntervalSpec};
pub use strings::{leaf_strings, prefix_hierarchy};
pub use taxonomy::{TaxSpec, Taxonomy};
pub use vgh::{AttributeKind, GenValue, Vgh};

/// Node identifier within a hierarchy (root is always `0`).
pub type NodeId = u32;

/// Errors from hierarchy construction and lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum HierarchyError {
    /// A label appears more than once in a taxonomy.
    DuplicateLabel(String),
    /// A requested label does not exist.
    UnknownLabel(String),
    /// The structure is invalid (e.g. empty taxonomy, zero-width interval).
    Invalid(String),
    /// A value lies outside the hierarchy's domain.
    OutOfDomain(f64),
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::DuplicateLabel(l) => write!(f, "duplicate label: {l}"),
            HierarchyError::UnknownLabel(l) => write!(f, "unknown label: {l}"),
            HierarchyError::Invalid(s) => write!(f, "invalid hierarchy: {s}"),
            HierarchyError::OutOfDomain(v) => write!(f, "value {v} outside domain"),
        }
    }
}

impl std::error::Error for HierarchyError {}
