//! String generalization via prefix truncation — infrastructure for the
//! paper's future-work direction ("extend our existing solution to handle
//! alphanumeric attributes (e.g., address information)", §VIII).
//!
//! A string domain is generalized by truncating to shorter and shorter
//! prefixes: `"smith" → "smi*" → "s*" → ANY`. The result is an ordinary
//! [`Taxonomy`], so every blocking and heuristic mechanism applies
//! unchanged; the edit-distance slack bounds live in `pprl-blocking`.

use crate::{HierarchyError, TaxSpec, Taxonomy};
use std::collections::BTreeMap;

/// Builds a prefix-truncation taxonomy over a string domain.
///
/// `prefix_lengths` are the truncation lengths from coarse to fine, e.g.
/// `&[1, 3]` yields `ANY → "s*" → "smi*" → "smith"`. Values are deduplicated
/// and sorted; labels of internal nodes carry a `*` suffix.
pub fn prefix_hierarchy(
    name: impl Into<String>,
    values: &[&str],
    prefix_lengths: &[usize],
) -> Result<Taxonomy, HierarchyError> {
    if values.is_empty() {
        return Err(HierarchyError::Invalid("empty string domain".into()));
    }
    let mut sorted: Vec<&str> = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut lens = prefix_lengths.to_vec();
    lens.sort_unstable();
    lens.dedup();

    let spec = TaxSpec::Node("ANY".into(), group(&sorted, &lens));
    Taxonomy::from_spec(name, &spec)
}

/// Recursively groups sorted values by their prefix of `lens\[0\]` chars.
fn group(values: &[&str], lens: &[usize]) -> Vec<TaxSpec> {
    match lens.split_first() {
        None => values.iter().map(|v| TaxSpec::leaf(*v)).collect(),
        Some((&len, rest)) => {
            let mut buckets: BTreeMap<String, Vec<&str>> = BTreeMap::new();
            for &v in values {
                let prefix: String = v.chars().take(len).collect();
                buckets.entry(prefix).or_default().push(v);
            }
            buckets
                .into_iter()
                .map(|(prefix, members)| {
                    // A bucket holding a single full string that *is* its own
                    // prefix collapses to a leaf (avoids `ab*` over just `ab`).
                    if members.len() == 1 && members[0] == prefix {
                        TaxSpec::leaf(members[0])
                    } else {
                        TaxSpec::node(format!("{prefix}*"), group(&members, rest))
                    }
                })
                .collect()
        }
    }
}

/// Extracts the string specialization set of a taxonomy node: the leaf
/// labels below it. Used by the edit-distance slack bounds.
pub fn leaf_strings(tax: &Taxonomy, node: crate::NodeId) -> Vec<&str> {
    tax.leaves_under(node)
        .map(|pos| tax.label(tax.leaf_node(pos)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_prefix() {
        let t = prefix_hierarchy(
            "surname",
            &["smith", "smythe", "sanders", "jones", "johnson"],
            &[1, 2],
        )
        .unwrap();
        assert_eq!(t.leaf_count(), 5);
        let s_star = t.node_by_label("s*").unwrap();
        assert_eq!(t.spec_set_size(s_star), 3);
        let sm = t.node_by_label("sm*").unwrap();
        let leaves = leaf_strings(&t, sm);
        assert_eq!(leaves, vec!["smith", "smythe"]);
    }

    #[test]
    fn deduplicates_values() {
        let t = prefix_hierarchy("x", &["aa", "aa", "ab"], &[1]).unwrap();
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn single_member_bucket_collapses() {
        let t = prefix_hierarchy("x", &["ab", "cd", "ce"], &[2]).unwrap();
        // "ab" is alone under prefix "ab" and equals it → leaf directly
        // under the root.
        let ab = t.node_by_label("ab").unwrap();
        assert_eq!(t.parent(ab), Some(t.root()));
        assert!(t.node_by_label("c*").is_err()); // prefix length 2 → "cd"/"ce" split
    }

    #[test]
    fn empty_domain_rejected() {
        assert!(prefix_hierarchy("x", &[], &[1]).is_err());
    }

    #[test]
    fn root_only_hierarchy() {
        // No prefix levels: flat ANY over all strings.
        let t = prefix_hierarchy("x", &["p", "q"], &[]).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.leaf_count(), 2);
    }
}
