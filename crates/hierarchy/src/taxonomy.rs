//! Taxonomy trees for categorical attributes.

use crate::{HierarchyError, NodeId};
use std::collections::HashMap;

/// Declarative taxonomy specification — nested labels.
///
/// ```
/// use pprl_hierarchy::{TaxSpec, Taxonomy};
///
/// let spec = TaxSpec::node("ANY", vec![
///     TaxSpec::node("Secondary", vec![TaxSpec::leaf("9th"), TaxSpec::leaf("10th")]),
///     TaxSpec::leaf("Bachelors"),
/// ]);
/// let tax = Taxonomy::from_spec("education", &spec).unwrap();
/// assert_eq!(tax.leaf_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub enum TaxSpec {
    /// A leaf value of the attribute domain.
    Leaf(String),
    /// An internal generalization with at least one child.
    Node(String, Vec<TaxSpec>),
}

impl TaxSpec {
    /// Convenience leaf constructor.
    pub fn leaf(label: impl Into<String>) -> Self {
        TaxSpec::Leaf(label.into())
    }

    /// Convenience internal-node constructor.
    pub fn node(label: impl Into<String>, children: Vec<TaxSpec>) -> Self {
        TaxSpec::Node(label.into(), children)
    }
}

/// An immutable taxonomy tree with DFS-contiguous leaf numbering.
///
/// Leaf *positions* (`0..leaf_count`) are the values records store; node
/// ids are the generalizations anonymized records store. Every node knows
/// the half-open range of leaf positions below it, so specialization-set
/// arithmetic is O(1).
#[derive(Clone, Debug)]
pub struct Taxonomy {
    name: String,
    labels: Vec<String>,
    parents: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depths: Vec<u32>,
    /// Half-open leaf-position range covered by each node.
    leaf_ranges: Vec<(u32, u32)>,
    /// Leaf position → node id.
    leaf_nodes: Vec<NodeId>,
    label_to_node: HashMap<String, NodeId>,
    height: u32,
}

impl Taxonomy {
    /// Builds a taxonomy from a specification. The spec root becomes node 0.
    pub fn from_spec(name: impl Into<String>, spec: &TaxSpec) -> Result<Self, HierarchyError> {
        let mut t = Taxonomy {
            name: name.into(),
            labels: Vec::new(),
            parents: Vec::new(),
            children: Vec::new(),
            depths: Vec::new(),
            leaf_ranges: Vec::new(),
            leaf_nodes: Vec::new(),
            label_to_node: HashMap::new(),
            height: 0,
        };
        t.build(spec, None, 0)?;
        if t.leaf_nodes.is_empty() {
            return Err(HierarchyError::Invalid("taxonomy has no leaves".into()));
        }
        Ok(t)
    }

    /// Builds a flat taxonomy: root `ANY` over the given leaves. Handy for
    /// attributes without a published hierarchy (e.g. `sex`).
    pub fn flat(
        name: impl Into<String>,
        leaves: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, HierarchyError> {
        let spec = TaxSpec::Node(
            "ANY".into(),
            leaves.into_iter().map(|l| TaxSpec::Leaf(l.into())).collect(),
        );
        Taxonomy::from_spec(name, &spec)
    }

    fn build(
        &mut self,
        spec: &TaxSpec,
        parent: Option<NodeId>,
        depth: u32,
    ) -> Result<NodeId, HierarchyError> {
        let (label, kids) = match spec {
            TaxSpec::Leaf(l) => (l, None),
            TaxSpec::Node(l, c) => {
                if c.is_empty() {
                    return Err(HierarchyError::Invalid(format!(
                        "internal node {l:?} has no children"
                    )));
                }
                (l, Some(c))
            }
        };
        let id = self.labels.len() as NodeId;
        if self.label_to_node.insert(label.clone(), id).is_some() {
            return Err(HierarchyError::DuplicateLabel(label.clone()));
        }
        self.labels.push(label.clone());
        self.parents.push(parent);
        self.children.push(Vec::new());
        self.depths.push(depth);
        self.leaf_ranges.push((0, 0));
        self.height = self.height.max(depth);

        match kids {
            None => {
                let pos = self.leaf_nodes.len() as u32;
                self.leaf_nodes.push(id);
                self.leaf_ranges[id as usize] = (pos, pos + 1);
            }
            Some(kids) => {
                let lo = self.leaf_nodes.len() as u32;
                for child_spec in kids {
                    let child = self.build(child_spec, Some(id), depth + 1)?;
                    self.children[id as usize].push(child);
                }
                let hi = self.leaf_nodes.len() as u32;
                self.leaf_ranges[id as usize] = (lo, hi);
            }
        }
        Ok(id)
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root node (always `0`).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of leaves (the domain size).
    pub fn leaf_count(&self) -> usize {
        self.leaf_nodes.len()
    }

    /// Maximum depth (root = 0).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Human-readable label of a node.
    pub fn label(&self, id: NodeId) -> &str {
        &self.labels[id as usize]
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parents[id as usize]
    }

    /// Children of a node (empty for leaves).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id as usize]
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: NodeId) -> u32 {
        self.depths[id as usize]
    }

    /// `true` iff the node is a leaf.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.children[id as usize].is_empty()
    }

    /// Half-open range of leaf positions below the node — the
    /// specialization set in range form.
    pub fn leaf_range(&self, id: NodeId) -> (u32, u32) {
        self.leaf_ranges[id as usize]
    }

    /// Size of the specialization set.
    pub fn spec_set_size(&self, id: NodeId) -> u32 {
        let (lo, hi) = self.leaf_ranges[id as usize];
        hi - lo
    }

    /// `|specSet(a) ∩ specSet(b)|` — in a tree, ranges are nested or
    /// disjoint, so this is range-overlap arithmetic.
    pub fn spec_set_overlap(&self, a: NodeId, b: NodeId) -> u32 {
        let (alo, ahi) = self.leaf_ranges[a as usize];
        let (blo, bhi) = self.leaf_ranges[b as usize];
        ahi.min(bhi).saturating_sub(alo.max(blo))
    }

    /// Node id of the leaf at a given position.
    pub fn leaf_node(&self, pos: u32) -> NodeId {
        self.leaf_nodes[pos as usize]
    }

    /// Looks up any node by its label.
    pub fn node_by_label(&self, label: &str) -> Result<NodeId, HierarchyError> {
        self.label_to_node
            .get(label)
            .copied()
            .ok_or_else(|| HierarchyError::UnknownLabel(label.to_string()))
    }

    /// Looks up a *leaf position* by label.
    pub fn leaf_position(&self, label: &str) -> Result<u32, HierarchyError> {
        let id = self.node_by_label(label)?;
        if !self.is_leaf(id) {
            return Err(HierarchyError::UnknownLabel(format!(
                "{label} is not a leaf"
            )));
        }
        Ok(self.leaf_ranges[id as usize].0)
    }

    /// Ancestor of `id` that sits `levels_up` levels closer to the root
    /// (saturating at the root) — full-domain generalization's primitive.
    pub fn generalize(&self, id: NodeId, levels_up: u32) -> NodeId {
        let mut cur = id;
        for _ in 0..levels_up {
            match self.parents[cur as usize] {
                Some(p) => cur = p,
                None => break,
            }
        }
        cur
    }

    /// Ancestor of `id` at exactly `depth` (requires `depth ≤ depth(id)`).
    pub fn ancestor_at_depth(&self, id: NodeId, depth: u32) -> NodeId {
        let d = self.depths[id as usize];
        debug_assert!(depth <= d);
        self.generalize(id, d - depth)
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.depths[a as usize] > self.depths[b as usize] {
            a = self.parents[a as usize].expect("deeper node has parent");
        }
        while self.depths[b as usize] > self.depths[a as usize] {
            b = self.parents[b as usize].expect("deeper node has parent");
        }
        while a != b {
            a = self.parents[a as usize].expect("non-root while distinct");
            b = self.parents[b as usize].expect("non-root while distinct");
        }
        a
    }

    /// Iterates over the leaf positions below a node.
    pub fn leaves_under(&self, id: NodeId) -> impl Iterator<Item = u32> + '_ {
        let (lo, hi) = self.leaf_ranges[id as usize];
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 Education hierarchy.
    fn education() -> Taxonomy {
        let spec = TaxSpec::node(
            "ANY",
            vec![
                TaxSpec::node(
                    "Secondary",
                    vec![
                        TaxSpec::node("Junior Sec.", vec![TaxSpec::leaf("9th"), TaxSpec::leaf("10th")]),
                        TaxSpec::node("Senior Sec.", vec![TaxSpec::leaf("11th"), TaxSpec::leaf("12th")]),
                    ],
                ),
                TaxSpec::node(
                    "University",
                    vec![
                        TaxSpec::leaf("Bachelors"),
                        TaxSpec::node(
                            "Grad School",
                            vec![TaxSpec::leaf("Masters"), TaxSpec::leaf("Doctorate")],
                        ),
                    ],
                ),
            ],
        );
        Taxonomy::from_spec("education", &spec).unwrap()
    }

    #[test]
    fn structure_matches_spec() {
        let t = education();
        assert_eq!(t.leaf_count(), 7);
        assert_eq!(t.height(), 3);
        assert_eq!(t.label(t.root()), "ANY");
        assert_eq!(t.spec_set_size(t.root()), 7);
    }

    #[test]
    fn leaf_ranges_are_contiguous_dfs() {
        let t = education();
        let senior = t.node_by_label("Senior Sec.").unwrap();
        let (lo, hi) = t.leaf_range(senior);
        assert_eq!(hi - lo, 2);
        let labels: Vec<_> = t
            .leaves_under(senior)
            .map(|p| t.label(t.leaf_node(p)))
            .collect();
        assert_eq!(labels, vec!["11th", "12th"]);
    }

    #[test]
    fn spec_set_overlap_nested_and_disjoint() {
        let t = education();
        let any = t.root();
        let senior = t.node_by_label("Senior Sec.").unwrap();
        let masters = t.node_by_label("Masters").unwrap();
        // Paper §III: specSet(Senior Sec.) = {11th, 12th}; Masters not in it.
        assert_eq!(t.spec_set_overlap(senior, masters), 0);
        assert_eq!(t.spec_set_overlap(any, senior), 2);
        assert_eq!(t.spec_set_overlap(senior, senior), 2);
    }

    #[test]
    fn generalize_walks_toward_root() {
        let t = education();
        let masters = t.node_by_label("Masters").unwrap();
        assert_eq!(t.label(t.generalize(masters, 1)), "Grad School");
        assert_eq!(t.label(t.generalize(masters, 2)), "University");
        assert_eq!(t.label(t.generalize(masters, 99)), "ANY");
    }

    #[test]
    fn lca_pairs() {
        let t = education();
        let m = t.node_by_label("Masters").unwrap();
        let d = t.node_by_label("Doctorate").unwrap();
        let b = t.node_by_label("Bachelors").unwrap();
        let n9 = t.node_by_label("9th").unwrap();
        assert_eq!(t.label(t.lca(m, d)), "Grad School");
        assert_eq!(t.label(t.lca(m, b)), "University");
        assert_eq!(t.label(t.lca(m, n9)), "ANY");
        assert_eq!(t.lca(m, m), m);
    }

    #[test]
    fn ancestor_at_depth() {
        let t = education();
        let m = t.node_by_label("Masters").unwrap();
        assert_eq!(t.depth(m), 3);
        assert_eq!(t.label(t.ancestor_at_depth(m, 0)), "ANY");
        assert_eq!(t.label(t.ancestor_at_depth(m, 2)), "Grad School");
    }

    #[test]
    fn label_lookups() {
        let t = education();
        assert!(t.node_by_label("Nope").is_err());
        assert_eq!(t.leaf_position("9th").unwrap(), 0);
        assert!(t.leaf_position("Secondary").is_err());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let spec = TaxSpec::node("ANY", vec![TaxSpec::leaf("x"), TaxSpec::leaf("x")]);
        assert!(matches!(
            Taxonomy::from_spec("dup", &spec),
            Err(HierarchyError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn empty_internal_node_rejected() {
        let spec = TaxSpec::node("ANY", vec![TaxSpec::node("empty", vec![])]);
        assert!(Taxonomy::from_spec("bad", &spec).is_err());
    }

    #[test]
    fn flat_taxonomy() {
        let t = Taxonomy::flat("sex", ["Male", "Female"]).unwrap();
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.height(), 1);
        assert_eq!(t.spec_set_size(t.root()), 2);
    }
}
