//! Unified view over categorical and continuous hierarchies.

use crate::{HierarchyError, IntervalHierarchy, NodeId, Taxonomy};
use serde::{Deserialize, Serialize};

/// The two attribute families the paper's distance functions cover:
/// Hamming distance for discrete attributes, normalized Euclidean for
/// continuous ones (§V-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Discrete domain with a taxonomy VGH; Hamming distance.
    Categorical,
    /// Numeric domain with an interval VGH; normalized Euclidean distance.
    Continuous,
}

/// A value generalization hierarchy for one attribute.
#[derive(Clone, Debug)]
pub enum Vgh {
    /// Taxonomy tree over a discrete domain.
    Categorical(Taxonomy),
    /// Interval tree over a numeric domain.
    Continuous(IntervalHierarchy),
}

impl Vgh {
    /// The attribute family.
    pub fn kind(&self) -> AttributeKind {
        match self {
            Vgh::Categorical(_) => AttributeKind::Categorical,
            Vgh::Continuous(_) => AttributeKind::Continuous,
        }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        match self {
            Vgh::Categorical(t) => t.name(),
            Vgh::Continuous(h) => h.name(),
        }
    }

    /// The root generalization (`ANY`).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Tree height (root = depth 0).
    pub fn height(&self) -> u32 {
        match self {
            Vgh::Categorical(t) => t.height(),
            Vgh::Continuous(h) => h.height(),
        }
    }

    /// Node depth.
    pub fn depth(&self, id: NodeId) -> u32 {
        match self {
            Vgh::Categorical(t) => t.depth(id),
            Vgh::Continuous(h) => h.depth(id),
        }
    }

    /// Parent node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        match self {
            Vgh::Categorical(t) => t.parent(id),
            Vgh::Continuous(h) => h.parent(id),
        }
    }

    /// Child nodes.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match self {
            Vgh::Categorical(t) => t.children(id),
            Vgh::Continuous(h) => h.children(id),
        }
    }

    /// `true` iff `id` is maximally specific.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        match self {
            Vgh::Categorical(t) => t.is_leaf(id),
            Vgh::Continuous(h) => h.is_leaf(id),
        }
    }

    /// Generalizes `levels_up` levels toward the root (saturating).
    pub fn generalize(&self, id: NodeId, levels_up: u32) -> NodeId {
        match self {
            Vgh::Categorical(t) => t.generalize(id, levels_up),
            Vgh::Continuous(h) => h.generalize(id, levels_up),
        }
    }

    /// Human-readable rendering of a generalization.
    pub fn render(&self, id: NodeId) -> String {
        match self {
            Vgh::Categorical(t) => t.label(id).to_string(),
            Vgh::Continuous(h) => {
                if id == h.root() {
                    "ANY".to_string()
                } else {
                    let (lo, hi) = h.bounds(id);
                    format!("[{lo}-{hi})")
                }
            }
        }
    }

    /// The taxonomy, if categorical.
    pub fn as_taxonomy(&self) -> Option<&Taxonomy> {
        match self {
            Vgh::Categorical(t) => Some(t),
            Vgh::Continuous(_) => None,
        }
    }

    /// The interval hierarchy, if continuous.
    pub fn as_intervals(&self) -> Option<&IntervalHierarchy> {
        match self {
            Vgh::Categorical(_) => None,
            Vgh::Continuous(h) => Some(h),
        }
    }

    /// Maps an original attribute value to its *leaf* generalization node —
    /// the starting point for bottom-up anonymization.
    pub fn leaf_node_for(&self, value: &GenValueInput) -> Result<NodeId, HierarchyError> {
        match (self, value) {
            (Vgh::Categorical(t), GenValueInput::LeafPosition(pos)) => {
                if (*pos as usize) < t.leaf_count() {
                    Ok(t.leaf_node(*pos))
                } else {
                    Err(HierarchyError::Invalid(format!(
                        "leaf position {pos} out of range"
                    )))
                }
            }
            (Vgh::Continuous(h), GenValueInput::Numeric(v)) => h.leaf_for(*v),
            _ => Err(HierarchyError::Invalid(
                "value kind does not match hierarchy kind".into(),
            )),
        }
    }
}

/// An original (un-generalized) attribute value, used to locate leaves.
#[derive(Clone, Copy, Debug)]
pub enum GenValueInput {
    /// Categorical leaf position.
    LeafPosition(u32),
    /// Continuous value.
    Numeric(f64),
}

/// A generalized attribute value: a node in the attribute's VGH.
///
/// (The anonymized data sets the data holders publish are sequences of
/// these, one per quasi-identifier — the paper's "generalization
/// sequences".)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GenValue(pub NodeId);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxSpec;

    fn cat() -> Vgh {
        Vgh::Categorical(
            Taxonomy::from_spec(
                "edu",
                &TaxSpec::node(
                    "ANY",
                    vec![
                        TaxSpec::node("Sec", vec![TaxSpec::leaf("9th"), TaxSpec::leaf("10th")]),
                        TaxSpec::leaf("Bachelors"),
                    ],
                ),
            )
            .unwrap(),
        )
    }

    fn num() -> Vgh {
        Vgh::Continuous(IntervalHierarchy::equi_width("age", 0.0, 16.0, &[2, 2]).unwrap())
    }

    #[test]
    fn kind_dispatch() {
        assert_eq!(cat().kind(), AttributeKind::Categorical);
        assert_eq!(num().kind(), AttributeKind::Continuous);
    }

    #[test]
    fn render_forms() {
        let c = cat();
        assert_eq!(c.render(0), "ANY");
        let n = num();
        assert_eq!(n.render(0), "ANY");
        let leaf = n.leaf_node_for(&GenValueInput::Numeric(5.0)).unwrap();
        assert_eq!(n.render(leaf), "[4-8)");
    }

    #[test]
    fn leaf_node_for_dispatch() {
        let c = cat();
        let leaf = c.leaf_node_for(&GenValueInput::LeafPosition(2)).unwrap();
        assert_eq!(c.render(leaf), "Bachelors");
        assert!(c.leaf_node_for(&GenValueInput::LeafPosition(5)).is_err());
        assert!(c.leaf_node_for(&GenValueInput::Numeric(1.0)).is_err());
        let n = num();
        assert!(n.leaf_node_for(&GenValueInput::LeafPosition(0)).is_err());
    }

    #[test]
    fn generalize_saturates_at_root() {
        let c = cat();
        let leaf = c.leaf_node_for(&GenValueInput::LeafPosition(0)).unwrap();
        assert_eq!(c.generalize(leaf, 10), c.root());
    }
}
