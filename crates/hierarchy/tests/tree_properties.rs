//! Property tests over randomly generated taxonomies: the structural
//! invariants every other crate's arithmetic relies on.

use pprl_hierarchy::{TaxSpec, Taxonomy};
use proptest::prelude::*;

/// Strategy: a random taxonomy with unique labels, depth ≤ 4, fanout ≤ 4.
fn taxonomy() -> impl Strategy<Value = Taxonomy> {
    // Encode the shape as a nested fanout description and generate labels
    // mechanically (uniqueness by path).
    let leaf = Just(Vec::<Vec<usize>>::new());
    let shape = prop_oneof![
        leaf,
        proptest::collection::vec(proptest::collection::vec(1usize..4, 0..3), 1..4),
    ];
    shape.prop_map(|levels| {
        fn build(prefix: String, depth: usize, levels: &[Vec<usize>]) -> TaxSpec {
            match levels.get(depth) {
                None | Some(_) if depth > 0 && levels.get(depth).map_or(true, Vec::is_empty) => {
                    TaxSpec::leaf(prefix)
                }
                None => TaxSpec::node(prefix.clone(), vec![TaxSpec::leaf(format!("{prefix}/only"))]),
                Some(fanouts) => {
                    let children = fanouts
                        .iter()
                        .enumerate()
                        .flat_map(|(i, &f)| {
                            (0..f).map(move |j| (i, j))
                        })
                        .map(|(i, j)| build(format!("{prefix}/{i}.{j}"), depth + 1, levels))
                        .collect::<Vec<_>>();
                    if children.is_empty() {
                        TaxSpec::leaf(prefix)
                    } else {
                        TaxSpec::node(prefix, children)
                    }
                }
            }
        }
        let spec = build("root".to_string(), 0, &levels);
        Taxonomy::from_spec("random", &spec).expect("generated spec is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Children's leaf ranges partition the parent's exactly.
    #[test]
    fn leaf_ranges_partition(t in taxonomy()) {
        for node in 0..t.node_count() as u32 {
            let kids = t.children(node);
            if kids.is_empty() {
                prop_assert_eq!(t.spec_set_size(node), 1);
                continue;
            }
            let (plo, phi) = t.leaf_range(node);
            let mut cursor = plo;
            for &c in kids {
                let (clo, chi) = t.leaf_range(c);
                prop_assert_eq!(clo, cursor, "children contiguous in DFS order");
                cursor = chi;
            }
            prop_assert_eq!(cursor, phi, "children cover the parent");
        }
    }

    /// Overlap arithmetic agrees with explicit set intersection.
    #[test]
    fn overlap_matches_set_semantics(t in taxonomy()) {
        use std::collections::HashSet;
        let leaf_set = |n: u32| -> HashSet<u32> { t.leaves_under(n).collect() };
        for a in 0..t.node_count() as u32 {
            for b in 0..t.node_count() as u32 {
                let expected = leaf_set(a).intersection(&leaf_set(b)).count() as u32;
                prop_assert_eq!(t.spec_set_overlap(a, b), expected);
            }
        }
    }

    /// The LCA is an ancestor of both nodes and no deeper ancestor is.
    #[test]
    fn lca_is_deepest_common_ancestor(t in taxonomy()) {
        let ancestors = |mut n: u32| -> Vec<u32> {
            let mut out = vec![n];
            while let Some(p) = t.parent(n) {
                out.push(p);
                n = p;
            }
            out
        };
        for a in 0..t.node_count() as u32 {
            for b in 0..t.node_count() as u32 {
                let l = t.lca(a, b);
                let aa = ancestors(a);
                let ab = ancestors(b);
                prop_assert!(aa.contains(&l) && ab.contains(&l));
                // Deepest: the first common element of the ancestor chains.
                let first_common = aa.iter().find(|x| ab.contains(x)).copied().unwrap();
                prop_assert_eq!(l, first_common);
            }
        }
    }

    /// Generalization walks strictly toward the root and saturates there.
    #[test]
    fn generalize_saturates(t in taxonomy()) {
        for n in 0..t.node_count() as u32 {
            let d = t.depth(n);
            prop_assert_eq!(t.generalize(n, d), t.root());
            prop_assert_eq!(t.generalize(n, d + 5), t.root());
            if d > 0 {
                prop_assert_eq!(t.depth(t.generalize(n, 1)), d - 1);
            }
        }
    }
}
