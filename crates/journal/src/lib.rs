//! # pprl-journal — durable, append-only run journal
//!
//! Crash-safe progress log for long linkage jobs: the pipeline appends a
//! frame per unit of completed work (blocking chunk tallies, per-pair SMC
//! outcomes, periodic session checkpoints) and a killed process resumes by
//! replaying the journal instead of re-running paid-for cryptography.
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! header:  magic "PPRLJRNL" (8) | version u16 LE (2) | fingerprint u64 LE (8)
//! frame:   kind u8 (1) | len u32 LE (4) | payload (len) | checksum u64 LE (8)
//! ```
//!
//! The checksum is FNV-1a-64 over `kind ‖ len ‖ payload`. The
//! `fingerprint` is caller-supplied (a digest of the job configuration and
//! inputs) and is validated on resume so a journal is never replayed
//! against drifted inputs.
//!
//! ## Torn-write semantics
//!
//! The file is append-only and every frame is self-delimiting, so the only
//! damage a process kill can cause is an *incomplete final frame*. Recovery
//! parses the longest valid frame prefix and truncates the rest: a torn
//! tail costs at most the single unit of work whose frame never became
//! durable — it never corrupts earlier frames. Decoding is total: arbitrary
//! bytes, truncations, and bit flips end the valid prefix, they never
//! panic (property-tested in `tests/frame_fuzz.rs`).
//!
//! This crate is deliberately stdlib-only (dependency policy D001): it
//! sits on the persistence path of a privacy protocol, next to key
//! material.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// File magic, first 8 bytes of every journal.
pub const MAGIC: [u8; 8] = *b"PPRLJRNL";

/// Current on-disk format version.
pub const FORMAT_VERSION: u16 = 1;

/// Header length: magic + version + fingerprint.
pub const HEADER_LEN: usize = 8 + 2 + 8;

/// Per-frame overhead: kind + length + checksum.
pub const FRAME_OVERHEAD: usize = 1 + 4 + 8;

/// Upper bound on a single frame payload. A corrupt length field must not
/// trigger a multi-gigabyte allocation; real payloads (session snapshots)
/// are far below this.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// FNV-1a 64-bit hash — the workspace's standard content fingerprint
/// (same function the analyzer baseline uses).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Streaming variant of [`fnv1a64`] for fingerprinting heterogeneous data
/// without concatenating it first.
#[derive(Clone, Debug)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a64 {
    /// Fresh hasher with the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian) into the running hash.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One journal record: an opaque payload tagged with a caller-defined kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Caller-defined record kind (the journal does not interpret it).
    pub kind: u8,
    /// Record payload.
    pub payload: Vec<u8>,
}

/// Errors from opening or validating a journal. Torn tails are *not*
/// errors — they are recovered by truncation.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the journal magic.
    BadMagic,
    /// The file uses a format version this build cannot read.
    BadVersion(u16),
    /// The file ends before a complete header — the creating process died
    /// during the very first write. Nothing is recoverable.
    TornHeader,
    /// The journal was written for a different job configuration or
    /// different inputs; replaying it would silently corrupt the run.
    FingerprintMismatch {
        /// Fingerprint the resuming job computed from its inputs.
        expected: u64,
        /// Fingerprint stored in the journal header.
        found: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::BadMagic => write!(f, "not a pprl journal (bad magic)"),
            JournalError::BadVersion(v) => write!(f, "unsupported journal version {v}"),
            JournalError::TornHeader => write!(f, "journal header incomplete (torn write)"),
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal fingerprint {found:#018x} does not match job {expected:#018x} \
                 (configuration or inputs changed since the journal was written)"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Serializes the file header.
pub fn encode_header(fingerprint: u64) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    let version = FORMAT_VERSION.to_le_bytes();
    let fp = fingerprint.to_le_bytes();
    let fields = MAGIC.iter().chain(&version).chain(&fp);
    for (dst, &src) in out.iter_mut().zip(fields) {
        *dst = src;
    }
    out
}

/// Parses and validates the file header, returning the job fingerprint.
pub fn decode_header(bytes: &[u8]) -> Result<u64, JournalError> {
    let header = bytes.get(..HEADER_LEN).ok_or(JournalError::TornHeader)?;
    let (magic, rest) = header.split_at(8);
    if magic != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let (ver, fp) = rest.split_at(2);
    let version =
        u16::from_le_bytes(ver.try_into().map_err(|_| JournalError::TornHeader)?);
    if version != FORMAT_VERSION {
        return Err(JournalError::BadVersion(version));
    }
    Ok(u64::from_le_bytes(
        fp.try_into().map_err(|_| JournalError::TornHeader)?,
    ))
}

/// Serializes one frame: `kind | len | payload | checksum`.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.push(kind);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Attempts to decode one frame from the start of `buf`. Returns the frame
/// and the bytes it consumed, or `None` when `buf` holds no complete valid
/// frame (truncated, over-long, or checksum mismatch) — the caller treats
/// that boundary as the end of the journal's valid prefix.
pub fn decode_frame(buf: &[u8]) -> Option<(Frame, usize)> {
    let (&kind, rest) = buf.split_first()?;
    let len = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?);
    if len > MAX_FRAME_LEN {
        return None;
    }
    let total = 5usize.checked_add(len as usize)?.checked_add(8)?;
    let frame = buf.get(..total)?;
    let (body, checksum_bytes) = frame.split_at(total - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().ok()?);
    if fnv1a64(body) != stored {
        return None;
    }
    let payload = body.get(5..)?.to_vec();
    Some((Frame { kind, payload }, total))
}

/// Result of parsing a journal's valid prefix.
#[derive(Debug)]
pub struct Recovered {
    /// Job fingerprint from the header.
    pub fingerprint: u64,
    /// Every fully durable frame, in append order.
    pub frames: Vec<Frame>,
    /// Byte length of the valid prefix (header + whole frames).
    pub valid_len: u64,
    /// Bytes past the valid prefix (a torn tail, or garbage).
    pub truncated_bytes: u64,
}

/// Parses the longest valid prefix of an in-memory journal image. Total:
/// never panics, whatever the bytes.
pub fn recover_bytes(bytes: &[u8]) -> Result<Recovered, JournalError> {
    let fingerprint = decode_header(bytes)?;
    let mut frames = Vec::new();
    let mut pos = HEADER_LEN;
    while let Some((frame, consumed)) = bytes.get(pos..).and_then(decode_frame) {
        frames.push(frame);
        pos += consumed;
    }
    Ok(Recovered {
        fingerprint,
        frames,
        valid_len: pos as u64,
        truncated_bytes: (bytes.len() - pos) as u64,
    })
}

/// Reads a journal file and parses its valid prefix.
pub fn recover(path: &Path) -> Result<Recovered, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    recover_bytes(&bytes)
}

/// Append-only journal writer. Every [`append`](JournalWriter::append)
/// hands the frame to the OS in a single write, so a killed *process*
/// loses at most the frame being written; call
/// [`sync`](JournalWriter::sync) at checkpoints to also survive a killed
/// *machine*.
///
/// ## Durability
///
/// By default the writer is *durable*: creation fsyncs both the new file
/// and its parent directory (a crash cannot resurrect a journal whose
/// directory entry never reached disk), and [`sync`](JournalWriter::sync)
/// fsyncs at checkpoints. [`create_with`](JournalWriter::create_with) /
/// [`resume_with`](JournalWriter::resume_with) with `durable = false`
/// turn every fsync into a no-op — for tests and benchmarks that only
/// model process crashes, where the page cache is already safe.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    durable: bool,
}

/// Fsyncs a file's parent directory so the directory entry itself is
/// durable (file fsync alone does not cover the name → inode link).
fn sync_parent_dir(path: &Path) -> Result<(), JournalError> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        File::open(parent)?.sync_all()?;
    }
    Ok(())
}

impl JournalWriter {
    /// Creates (or truncates) a journal for a fresh run, with full
    /// durability (see the type docs).
    pub fn create(path: &Path, fingerprint: u64) -> Result<Self, JournalError> {
        Self::create_with(path, fingerprint, true)
    }

    /// [`create`](Self::create) with explicit durability.
    pub fn create_with(
        path: &Path,
        fingerprint: u64,
        durable: bool,
    ) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&encode_header(fingerprint))?;
        file.flush()?;
        if durable {
            file.sync_data()?;
            sync_parent_dir(path)?;
        }
        Ok(JournalWriter { file, durable })
    }

    /// Reopens an existing journal for resumption: parses the valid
    /// prefix, validates the fingerprint against the resuming job,
    /// truncates any torn tail, and positions the writer at the end.
    /// Durable (see the type docs).
    pub fn resume(path: &Path, fingerprint: u64) -> Result<(Recovered, Self), JournalError> {
        Self::resume_with(path, fingerprint, true)
    }

    /// [`resume`](Self::resume) with explicit durability.
    pub fn resume_with(
        path: &Path,
        fingerprint: u64,
        durable: bool,
    ) -> Result<(Recovered, Self), JournalError> {
        let recovered = recover(path)?;
        if recovered.fingerprint != fingerprint {
            return Err(JournalError::FingerprintMismatch {
                expected: fingerprint,
                found: recovered.fingerprint,
            });
        }
        let file = OpenOptions::new().write(true).read(true).open(path)?;
        file.set_len(recovered.valid_len)?;
        let mut writer = JournalWriter { file, durable };
        use std::io::Seek;
        writer.file.seek(std::io::SeekFrom::End(0))?;
        if durable {
            // The truncation of a torn tail must not itself be torn.
            writer.file.sync_data()?;
        }
        Ok((recovered, writer))
    }

    /// Appends one frame (single OS write + flush).
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), JournalError> {
        self.file.write_all(&encode_frame(kind, payload))?;
        self.file.flush()?;
        Ok(())
    }

    /// Forces written frames to stable storage (fsync). A no-op for a
    /// writer opened with `durable = false`.
    pub fn sync(&self) -> Result<(), JournalError> {
        if self.durable {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fingerprint: u64, frames: &[(u8, &[u8])]) -> Vec<u8> {
        let mut bytes = encode_header(fingerprint).to_vec();
        for &(kind, payload) in frames {
            bytes.extend_from_slice(&encode_frame(kind, payload));
        }
        bytes
    }

    #[test]
    fn roundtrip_preserves_frames() {
        let frames: Vec<(u8, &[u8])> = vec![
            (1, b"config"),
            (2, &[]),
            (3, &[0xff; 300]),
            (4, b"\x00\x01\x02"),
        ];
        let bytes = image(0xdead_beef, &frames);
        let rec = recover_bytes(&bytes).unwrap();
        assert_eq!(rec.fingerprint, 0xdead_beef);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.valid_len, bytes.len() as u64);
        assert_eq!(rec.frames.len(), frames.len());
        for (got, &(kind, payload)) in rec.frames.iter().zip(&frames) {
            assert_eq!(got.kind, kind);
            assert_eq!(got.payload, payload);
        }
    }

    #[test]
    fn truncation_at_every_byte_recovers_a_frame_prefix() {
        let frames: Vec<(u8, &[u8])> = vec![(1, b"alpha"), (2, b"bravo-bravo"), (3, b"c")];
        let bytes = image(7, &frames);
        // Frame boundaries in the full image.
        let mut boundaries = vec![HEADER_LEN];
        for &(_, p) in &frames {
            boundaries.push(boundaries.last().unwrap() + FRAME_OVERHEAD + p.len());
        }
        for cut in HEADER_LEN..=bytes.len() {
            let rec = recover_bytes(&bytes[..cut]).unwrap();
            // Recovered frames = number of whole frames before the cut.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(rec.frames.len(), whole, "cut at {cut}");
            assert_eq!(rec.valid_len as usize, boundaries[whole], "cut at {cut}");
            assert_eq!(
                rec.truncated_bytes as usize,
                cut - boundaries[whole],
                "cut at {cut}"
            );
            // Recovered frames are bit-identical to the originals.
            for (got, &(kind, payload)) in rec.frames.iter().zip(&frames) {
                assert_eq!(got.kind, kind);
                assert_eq!(got.payload, payload);
            }
        }
    }

    #[test]
    fn truncation_inside_header_is_torn_header() {
        let bytes = image(9, &[(1, b"x")]);
        for cut in 0..HEADER_LEN {
            assert!(
                matches!(recover_bytes(&bytes[..cut]), Err(JournalError::TornHeader)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bit_flip_ends_the_valid_prefix() {
        let frames: Vec<(u8, &[u8])> = vec![(1, b"first"), (2, b"second"), (3, b"third")];
        let bytes = image(5, &frames);
        // Flip one bit in the middle frame's payload: recovery keeps frame
        // 1 and stops (the flipped frame fails its checksum; under an
        // unlucky flip the length field may swallow the rest, but earlier
        // frames always survive).
        let mut corrupt = bytes.clone();
        let mid = HEADER_LEN + FRAME_OVERHEAD + frames[0].1.len() + 5 + 2;
        corrupt[mid] ^= 0x10;
        let rec = recover_bytes(&corrupt).unwrap();
        assert!(rec.frames.len() <= 1 + 1); // frame 1, never the corrupt one intact
        assert_eq!(rec.frames[0].payload, b"first");
        assert!(rec.frames.iter().all(|f| f.payload != b"second"));
    }

    #[test]
    fn oversized_length_field_is_rejected_not_allocated() {
        let mut bytes = image(1, &[]);
        bytes.push(9); // kind
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        bytes.extend_from_slice(&[0u8; 32]);
        let rec = recover_bytes(&bytes).unwrap();
        assert!(rec.frames.is_empty());
        assert_eq!(rec.valid_len as usize, HEADER_LEN);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = image(1, &[]);
        bytes[0] ^= 0xff;
        assert!(matches!(recover_bytes(&bytes), Err(JournalError::BadMagic)));
        let mut bytes = image(1, &[]);
        bytes[8] = 0x63;
        assert!(matches!(
            recover_bytes(&bytes),
            Err(JournalError::BadVersion(_))
        ));
    }

    #[test]
    fn writer_resume_truncates_torn_tail_and_appends() {
        let dir = std::env::temp_dir().join(format!("pprl-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.journal");

        let mut w = JournalWriter::create(&path, 42).unwrap();
        w.append(1, b"one").unwrap();
        w.append(2, b"two").unwrap();
        drop(w);

        // Simulate a kill mid-write: append half a frame by hand.
        {
            use std::io::Seek;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.seek(std::io::SeekFrom::End(0)).unwrap();
            let torn = encode_frame(3, b"three");
            f.write_all(&torn[..torn.len() / 2]).unwrap();
        }

        let (rec, mut w) = JournalWriter::resume(&path, 42).unwrap();
        assert_eq!(rec.frames.len(), 2);
        assert!(rec.truncated_bytes > 0);
        w.append(3, b"three-retry").unwrap();
        drop(w);

        let rec = recover(&path).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.frames.len(), 3);
        assert_eq!(rec.frames[2].payload, b"three-retry");

        // Wrong fingerprint refuses to resume.
        assert!(matches!(
            JournalWriter::resume(&path, 43),
            Err(JournalError::FingerprintMismatch {
                expected: 43,
                found: 42
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_hasher_matches_oneshot() {
        let mut h = Fnv1a64::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), fnv1a64(b"hello world"));
        let mut h = Fnv1a64::new();
        h.update_u64(0x0102_0304_0506_0708);
        assert_eq!(h.finish(), fnv1a64(&0x0102_0304_0506_0708u64.to_le_bytes()));
    }
}
