//! Property tests for the journal format: recovery is *total* — arbitrary
//! record sequences survive encode → truncate-at-every-byte →
//! recover-prefix without panicking, and the recovered prefix is always a
//! bit-identical prefix of what was appended. This is the contract
//! crash-safe resumption builds on: a torn tail write costs one frame at
//! most, never an earlier record (`crates/crypto/tests/message_fuzz.rs` is
//! the same discipline one layer down, for wire frames).

use pprl_journal::{
    decode_frame, encode_frame, encode_header, fnv1a64, recover_bytes, Frame, JournalError,
    FRAME_OVERHEAD, HEADER_LEN,
};
use proptest::prelude::*;

/// An arbitrary record sequence: (kind, payload) pairs.
fn records() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    prop::collection::vec(
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..48)),
        0..12,
    )
}

/// Journal image for a record sequence.
fn image(fingerprint: u64, records: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut bytes = encode_header(fingerprint).to_vec();
    for (kind, payload) in records {
        bytes.extend_from_slice(&encode_frame(*kind, payload));
    }
    bytes
}

proptest! {
    /// Recovery of arbitrary bytes never panics.
    #[test]
    fn recover_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = recover_bytes(&bytes);
    }

    /// Arbitrary record sequences survive encode → truncate-at-every-byte
    /// → recover-prefix: the recovered frames are exactly the records
    /// whose frames fit entirely before the cut, bit-identical, and the
    /// reported valid length is the corresponding frame boundary.
    #[test]
    fn truncate_at_every_byte_recovers_exact_prefix(
        fingerprint in any::<u64>(),
        records in records(),
    ) {
        let bytes = image(fingerprint, &records);
        let mut boundaries = vec![HEADER_LEN];
        for (_, payload) in &records {
            boundaries.push(boundaries.last().unwrap() + FRAME_OVERHEAD + payload.len());
        }
        for cut in 0..=bytes.len() {
            match recover_bytes(&bytes[..cut]) {
                Err(JournalError::TornHeader) => prop_assert!(cut < HEADER_LEN),
                Err(e) => prop_assert!(false, "unexpected error at cut {cut}: {e}"),
                Ok(rec) => {
                    prop_assert!(cut >= HEADER_LEN);
                    prop_assert_eq!(rec.fingerprint, fingerprint);
                    let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
                    prop_assert_eq!(rec.frames.len(), whole, "cut at {}", cut);
                    prop_assert_eq!(rec.valid_len as usize, boundaries[whole]);
                    prop_assert_eq!(
                        rec.truncated_bytes as usize,
                        cut - boundaries[whole]
                    );
                    for (got, (kind, payload)) in rec.frames.iter().zip(&records) {
                        prop_assert_eq!(got.kind, *kind);
                        prop_assert_eq!(&got.payload, payload);
                    }
                }
            }
        }
    }

    /// A full, untruncated journal always recovers every record with no
    /// truncated bytes.
    #[test]
    fn full_image_roundtrips(fingerprint in any::<u64>(), records in records()) {
        let bytes = image(fingerprint, &records);
        let rec = recover_bytes(&bytes).unwrap();
        prop_assert_eq!(rec.frames.len(), records.len());
        prop_assert_eq!(rec.truncated_bytes, 0);
        prop_assert_eq!(rec.valid_len as usize, bytes.len());
    }

    /// Single-frame decode never panics on arbitrary bytes, and when it
    /// succeeds the frame re-encodes to the consumed bytes exactly.
    #[test]
    fn frame_decode_is_total_and_consistent(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if let Some((Frame { kind, payload }, consumed)) = decode_frame(&bytes) {
            prop_assert_eq!(encode_frame(kind, &payload), bytes[..consumed].to_vec());
        }
    }

    /// Every single-bit flip inside a frame is caught: the flipped frame
    /// never decodes to the original content.
    #[test]
    fn bit_flips_never_yield_the_original(
        kind in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..32),
        bit in 0usize..8,
        pos in any::<prop::sample::Index>(),
    ) {
        let frame = encode_frame(kind, &payload);
        let mut bad = frame.clone();
        let byte = pos.index(bad.len());
        bad[byte] ^= 1u8 << bit;
        match decode_frame(&bad) {
            None => {}
            Some((got, _)) => {
                prop_assert!(
                    got.kind != kind || got.payload != payload,
                    "flip at {}.{} decoded to the original frame",
                    byte,
                    bit
                );
            }
        }
    }

    /// The checksum is position-sensitive: reordering two adjacent frames
    /// still yields valid frames (each is self-contained), but the
    /// *content* order is faithfully the file order — recovery never
    /// reorders records.
    #[test]
    fn recovery_preserves_append_order(records in records()) {
        let bytes = image(1, &records);
        let rec = recover_bytes(&bytes).unwrap();
        let got: Vec<(u8, Vec<u8>)> =
            rec.frames.into_iter().map(|f| (f.kind, f.payload)).collect();
        prop_assert_eq!(got, records);
    }
}

/// Deterministic sanity check outside proptest: fnv1a64 matches the
/// published FNV-1a test vectors.
#[test]
fn fnv_vectors() {
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
}
