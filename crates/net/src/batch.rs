//! Coalesced data frames: several `Envelope`s per TCP frame.
//!
//! PR 5's loopback bench measured the `kind|len|checksum` framing plus the
//! per-frame syscall at ~1.10× overhead on tiny frames. A windowed sender
//! ([`PeerChannel::pump_window`](crate::peer::PeerChannel::pump_window))
//! often has several envelopes queued at once — the initial window fill,
//! and every retransmission burst after a reconnect — so those flushes
//! travel as one [`K_DATA_BATCH`](crate::frame::K_DATA_BATCH) frame
//! wrapping the same envelope encoding `K_DATA` carries singly:
//!
//! ```text
//! count (u16 LE) | count × ( len (u32 LE) | envelope bytes )
//! ```
//!
//! The receiver unpacks the batch and feeds every entry through the exact
//! dedup/ack path a solo envelope takes, so batching is invisible to the
//! reliability contract, the cost ledger, and the crash-resume machinery —
//! it only changes how many kernel round trips a burst costs.

use crate::NetError;
use pprl_crypto::protocol::transport::{Envelope, ENVELOPE_OVERHEAD};

/// Smallest well-formed batch payload: the entry count, one entry length,
/// and one minimal (payload-free) envelope.
pub const BATCH_MIN_LEN: usize = 2 + 4 + ENVELOPE_OVERHEAD;

/// Most envelopes one batch frame may carry. Far above what any send
/// window queues (the CLI caps `--window` well below this); it exists so
/// a corrupt count field cannot demand a giant allocation.
pub const MAX_BATCH_ENTRIES: usize = 4096;

/// Encodes already-encoded envelopes into one batch payload.
///
/// Callers hold envelopes in encoded form (the bytes are retransmitted
/// verbatim, so they are encoded once at submit time); this just adds the
/// count and per-entry length framing.
pub fn encode_batch(entries: &[&[u8]]) -> Vec<u8> {
    let total: usize = entries.iter().map(|e| 4 + e.len()).sum();
    let mut buf = Vec::with_capacity(2 + total);
    buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    for entry in entries {
        buf.extend_from_slice(&(entry.len() as u32).to_le_bytes());
        buf.extend_from_slice(entry);
    }
    buf
}

/// Decodes a batch payload back into its envelopes, in send order.
///
/// Any structural defect — truncated entry, trailing bytes, a count of
/// zero, an entry the envelope codec rejects — fails the whole frame: the
/// frame checksum already passed, so a malformed batch means an incoherent
/// sender, and the caller treats it like envelope corruption (drop the
/// connection, recover by reconnect).
pub fn decode_batch(payload: &[u8]) -> Result<Vec<Envelope>, NetError> {
    let malformed = |why: &str| NetError::Frame(format!("batch frame: {why}"));
    // Length-checked split (split_at panics past the end; split_at_checked
    // is past our MSRV).
    fn split(buf: &[u8], n: usize) -> Option<(&[u8], &[u8])> {
        (buf.len() >= n).then(|| buf.split_at(n))
    }
    let (count_bytes, mut rest) =
        split(payload, 2).ok_or_else(|| malformed("missing entry count"))?;
    let count_bytes: [u8; 2] = count_bytes
        .try_into()
        .map_err(|_| malformed("missing entry count"))?;
    let count = u16::from_le_bytes(count_bytes) as usize;
    if count == 0 {
        return Err(malformed("zero entries"));
    }
    if count > MAX_BATCH_ENTRIES {
        return Err(malformed("entry count exceeds the cap"));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let (len_bytes, after_len) =
            split(rest, 4).ok_or_else(|| malformed("truncated entry length"))?;
        let len_bytes: [u8; 4] = len_bytes
            .try_into()
            .map_err(|_| malformed("truncated entry length"))?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        let (entry, after_entry) =
            split(after_len, len).ok_or_else(|| malformed("truncated entry"))?;
        entries.push(
            Envelope::decode(entry)
                .map_err(|e| malformed(&format!("entry rejected by the envelope codec: {e}")))?,
        );
        rest = after_entry;
    }
    if !rest.is_empty() {
        return Err(malformed("trailing bytes after the last entry"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<u8> {
        Envelope::data(n, n * 10, vec![n as u8; 5 + n as usize]).encode()
    }

    #[test]
    fn batches_roundtrip_in_order() {
        let raw: Vec<Vec<u8>> = (1..=5).map(sample).collect();
        let entries: Vec<&[u8]> = raw.iter().map(|e| e.as_slice()).collect();
        let decoded = decode_batch(&encode_batch(&entries)).unwrap();
        assert_eq!(decoded.len(), 5);
        for (i, env) in decoded.iter().enumerate() {
            assert_eq!(env.pair_id, i as u64 + 1);
            assert_eq!(env.seq, (i as u64 + 1) * 10);
            assert_eq!(env.payload.len(), 5 + i + 1);
        }
    }

    #[test]
    fn a_single_entry_batch_is_legal() {
        let raw = sample(7);
        let decoded = decode_batch(&encode_batch(&[&raw])).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].pair_id, 7);
    }

    #[test]
    fn structural_defects_fail_the_whole_batch() {
        let raw = sample(1);
        let good = encode_batch(&[&raw]);
        // Zero entries.
        assert!(decode_batch(&[0, 0]).is_err());
        // Truncated anywhere.
        for cut in 0..good.len() {
            assert!(decode_batch(&good[..cut]).is_err(), "cut at {cut} decoded");
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0xEE);
        assert!(decode_batch(&long).is_err());
        // Count claiming more than present.
        let mut overcount = good.clone();
        overcount[0] = 2;
        assert!(decode_batch(&overcount).is_err());
    }

    #[test]
    fn min_len_matches_the_smallest_real_batch() {
        let raw = Envelope::data(1, 0, Vec::new()).encode();
        assert_eq!(encode_batch(&[&raw]).len(), BATCH_MIN_LEN);
    }
}
