//! A seeded, socket-level chaos proxy.
//!
//! Every fault the test suite injected before this module lived *above*
//! the socket (`FaultyTransport` drops whole protocol messages inside one
//! process). The chaos proxy attacks the byte stream itself: it is a tiny
//! TCP relay you park between any two parties — in-process from a test,
//! or standalone via `pprl-link chaosproxy` — that deterministically
//! injects the failure families real deployments meet:
//!
//! - **delay/jitter** — each chunk sleeps before forwarding;
//! - **drop** — a chunk vanishes, desynchronizing the peer's framing;
//! - **dup** — a chunk is written twice;
//! - **corrupt** — one bit of a chunk is flipped;
//! - **split** — chunks are re-written in tiny pieces at arbitrary byte
//!   boundaries (never harmful, but merciless to framing bugs);
//! - **reset** — after a byte budget the client side gets a hard RST
//!   (`SO_LINGER(0)`), not a polite FIN;
//! - **partition** — timed dark windows (and [`ChaosProxy::set_partition`]
//!   for script control) during which live connections are severed and
//!   new ones are accepted and immediately dropped;
//! - **slowloris** — bytes trickle through a few at a time with pauses.
//!
//! Faults are driven by a splitmix64 stream seeded from
//! [`ChaosConfig::seed`] and the connection ordinal, so a failing run
//! replays with the same decision sequence. (Chunk boundaries depend on
//! kernel scheduling, so byte-exact replay is not promised — decision
//! *rates* and orderings per chunk are.)
//!
//! The proxy is stdlib-only like the rest of the crate, and its non-test
//! code is panic-free: a relay that dies of an `unwrap` mid-soak would be
//! the least convincing robustness harness imaginable.

use crate::mux::bind_listener;
use crate::NetError;
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked pumps wake up to poll shutdown/partition flags.
const POLL: Duration = Duration::from_millis(20);

/// Dial timeout for the upstream leg of each proxied connection.
const UPSTREAM_TIMEOUT: Duration = Duration::from_secs(2);

/// Fault knobs. All-zero (via [`ChaosConfig::clean`]) relays faithfully;
/// [`ChaosConfig::fault_family`] builds the named single-fault presets the
/// chaos soak sweeps. Rates are per-mille per relayed chunk, so configs
/// stay integer-only and reproducible in CLI flags.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the per-connection fault decision streams.
    pub seed: u64,
    /// Fixed forwarding delay per chunk, in milliseconds.
    pub delay_ms: u64,
    /// Additional random delay per chunk, `0..=jitter_ms` milliseconds.
    pub jitter_ms: u64,
    /// Probability (per mille) that a chunk is silently dropped.
    pub drop_per_mille: u32,
    /// Probability (per mille) that a chunk is forwarded twice.
    pub dup_per_mille: u32,
    /// Probability (per mille) that one bit of a chunk is flipped.
    pub corrupt_per_mille: u32,
    /// Re-write every chunk in small pieces at arbitrary byte boundaries.
    pub split: bool,
    /// Hard-RST the client after this many relayed bytes per connection
    /// (`0` = never).
    pub reset_after_bytes: u64,
    /// Length of the repeating partition cycle in ms (`0` = no timed
    /// partitions).
    pub partition_period_ms: u64,
    /// Dark span at the end of each partition cycle, in ms.
    pub partition_dark_ms: u64,
    /// Forward at most this many bytes per write (`0` = unlimited).
    pub trickle_bytes: usize,
    /// Pause between trickled writes, in ms.
    pub trickle_pause_ms: u64,
}

impl ChaosConfig {
    /// A faithful relay: no faults, useful as the soak's control arm.
    pub fn clean(seed: u64) -> Self {
        ChaosConfig {
            seed,
            delay_ms: 0,
            jitter_ms: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
            corrupt_per_mille: 0,
            split: false,
            reset_after_bytes: 0,
            partition_period_ms: 0,
            partition_dark_ms: 0,
            trickle_bytes: 0,
            trickle_pause_ms: 0,
        }
    }

    /// The named single-fault presets the chaos soak iterates. Returns
    /// `None` for an unknown family name (the CLI reports the valid set).
    pub fn fault_family(name: &str, seed: u64) -> Option<Self> {
        let mut cfg = ChaosConfig::clean(seed);
        match name {
            "none" => {}
            "delay" => {
                cfg.delay_ms = 1;
                cfg.jitter_ms = 6;
            }
            "drop" => cfg.drop_per_mille = 8,
            "dup" => cfg.dup_per_mille = 8,
            "corrupt" => cfg.corrupt_per_mille = 8,
            "split" => cfg.split = true,
            "reset" => cfg.reset_after_bytes = 48 * 1024,
            "partition" => {
                cfg.partition_period_ms = 900;
                cfg.partition_dark_ms = 220;
            }
            "slowloris" => {
                cfg.trickle_bytes = 1024;
                cfg.trickle_pause_ms = 3;
            }
            _ => return None,
        }
        Some(cfg)
    }

    /// Every family name accepted by [`fault_family`](Self::fault_family).
    pub const FAMILIES: [&'static str; 9] = [
        "none",
        "delay",
        "drop",
        "dup",
        "corrupt",
        "split",
        "reset",
        "partition",
        "slowloris",
    ];
}

/// What the proxy did to the traffic, for assertions and the CLI's exit
/// report. Purely observational — nothing here feeds back into protocol
/// accounting, which is the whole point: the parties' `CostLedger` must
/// not notice any of it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Client connections accepted (including ones dropped while dark).
    pub connections: u64,
    /// Bytes actually forwarded (after drops, including dups).
    pub relayed_bytes: u64,
    /// Chunks silently discarded.
    pub dropped_chunks: u64,
    /// Chunks forwarded twice.
    pub duplicated_chunks: u64,
    /// Chunks with one bit flipped.
    pub corrupted_chunks: u64,
    /// Connections terminated with a hard RST.
    pub resets: u64,
    /// Connections severed (or refused) by a partition window.
    pub partitions: u64,
}

impl fmt::Display for ChaosStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} conns, {} bytes relayed, {} dropped, {} duped, {} corrupted, \
             {} resets, {} partitions",
            self.connections,
            self.relayed_bytes,
            self.dropped_chunks,
            self.duplicated_chunks,
            self.corrupted_chunks,
            self.resets,
            self.partitions,
        )
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    relayed_bytes: AtomicU64,
    dropped_chunks: AtomicU64,
    duplicated_chunks: AtomicU64,
    corrupted_chunks: AtomicU64,
    resets: AtomicU64,
    partitions: AtomicU64,
}

struct ProxyShared {
    cfg: ChaosConfig,
    upstream: SocketAddr,
    started: Instant,
    shutdown: AtomicBool,
    manual_dark: AtomicBool,
    counters: Counters,
    pumps: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ProxyShared {
    /// True while the link should behave as partitioned: either the
    /// manual switch is on, or the timed cycle is in its dark span.
    fn is_dark(&self) -> bool {
        if self.manual_dark.load(Ordering::SeqCst) {
            return true;
        }
        let period = self.cfg.partition_period_ms;
        if period == 0 {
            return false;
        }
        let into_cycle = (self.started.elapsed().as_millis() as u64) % period;
        into_cycle >= period.saturating_sub(self.cfg.partition_dark_ms)
    }
}

/// The running relay. Dropping it severs every proxied connection and
/// joins its threads.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen` (port `0` for ephemeral) and relays every inbound
    /// connection to `upstream` with `cfg`'s faults applied in both
    /// directions.
    pub fn start(listen: &str, upstream: SocketAddr, cfg: ChaosConfig) -> Result<Self, NetError> {
        let listener = bind_listener(listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ProxyShared {
            cfg,
            upstream,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            manual_dark: AtomicBool::new(false),
            counters: Counters::default(),
            pumps: Mutex::new(Vec::new()),
        });
        let worker = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("pprl-chaos-accept".into())
            .spawn(move || accept_loop(listener, worker))?;
        Ok(ChaosProxy {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's dialable address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Flips the manual partition switch. While dark, live connections
    /// are severed within one poll interval and fresh dials are accepted
    /// and immediately dropped; healing lets the next reconnect through.
    pub fn set_partition(&self, dark: bool) {
        self.shared.manual_dark.store(dark, Ordering::SeqCst);
    }

    /// A snapshot of the fault counters.
    pub fn stats(&self) -> ChaosStats {
        let c = &self.shared.counters;
        ChaosStats {
            connections: c.connections.load(Ordering::SeqCst),
            relayed_bytes: c.relayed_bytes.load(Ordering::SeqCst),
            dropped_chunks: c.dropped_chunks.load(Ordering::SeqCst),
            duplicated_chunks: c.duplicated_chunks.load(Ordering::SeqCst),
            corrupted_chunks: c.corrupted_chunks.load(Ordering::SeqCst),
            resets: c.resets.load(Ordering::SeqCst),
            partitions: c.partitions.load(Ordering::SeqCst),
        }
    }

    /// Stops the relay: severs connections, joins all threads.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let pumps = self
            .shared
            .pumps
            .lock()
            .map(|mut v| std::mem::take(&mut *v))
            .unwrap_or_default();
        for pump in pumps {
            let _ = pump.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ProxyShared>) {
    let mut conn_ordinal: u64 = 0;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                conn_ordinal += 1;
                shared.counters.connections.fetch_add(1, Ordering::SeqCst);
                if shared.is_dark() {
                    // A partitioned network looks like dead silence, not a
                    // polite refusal: accept (the kernel already did) and
                    // sever, so the dialer burns its own timeout.
                    shared.counters.partitions.fetch_add(1, Ordering::SeqCst);
                    drop(client);
                    continue;
                }
                let upstream =
                    match TcpStream::connect_timeout(&shared.upstream, UPSTREAM_TIMEOUT) {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                spawn_pumps(client, upstream, conn_ordinal, &shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Wires one proxied connection: two pump threads, one per direction,
/// sharing a byte budget (for `reset_after_bytes`) and a one-shot RST
/// latch so only one direction fires the reset.
fn spawn_pumps(client: TcpStream, upstream: TcpStream, ordinal: u64, shared: &Arc<ProxyShared>) {
    for s in [&client, &upstream] {
        let _ = s.set_nodelay(true);
        let _ = s.set_read_timeout(Some(POLL));
    }
    let budget = Arc::new(AtomicU64::new(0));
    let reset_fired = Arc::new(AtomicBool::new(false));
    let legs = match (client.try_clone(), upstream.try_clone()) {
        (Ok(c2), Ok(u2)) => [(client, u2, 0u64), (upstream, c2, 1u64)],
        _ => return,
    };
    for (rx, tx, direction) in legs {
        let worker = Arc::clone(shared);
        let budget = Arc::clone(&budget);
        let reset_fired = Arc::clone(&reset_fired);
        let seed = shared
            .cfg
            .seed
            .wrapping_add(ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ (direction << 1);
        let handle = std::thread::Builder::new()
            .name(format!("pprl-chaos-pump-{ordinal}-{direction}"))
            .spawn(move || pump(rx, tx, seed, budget, reset_fired, worker));
        if let Ok(handle) = handle {
            if let Ok(mut pumps) = shared.pumps.lock() {
                pumps.push(handle);
            }
        }
    }
}

fn pump(
    mut rx: TcpStream,
    mut tx: TcpStream,
    seed: u64,
    budget: Arc<AtomicU64>,
    reset_fired: Arc<AtomicBool>,
    shared: Arc<ProxyShared>,
) {
    let cfg = shared.cfg;
    let mut rng = Splitmix64::new(seed);
    let mut buf = [0u8; 4096];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if shared.is_dark() {
            shared.counters.partitions.fetch_add(1, Ordering::SeqCst);
            break;
        }
        let n = match rx.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let Some(chunk) = buf.get(..n) else { break };
        let mut chunk = chunk.to_vec();

        // Reset budget: both directions count toward one per-connection
        // byte total; whichever pump crosses the line fires the RST.
        if cfg.reset_after_bytes > 0 {
            let total = budget.fetch_add(n as u64, Ordering::SeqCst) + n as u64;
            if total >= cfg.reset_after_bytes
                && reset_fired
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                shared.counters.resets.fetch_add(1, Ordering::SeqCst);
                arm_rst(&rx);
                arm_rst(&tx);
                break;
            }
        }

        if per_mille(&mut rng, cfg.drop_per_mille) {
            shared.counters.dropped_chunks.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        let duplicate = per_mille(&mut rng, cfg.dup_per_mille);
        if duplicate {
            shared
                .counters
                .duplicated_chunks
                .fetch_add(1, Ordering::SeqCst);
        }
        if per_mille(&mut rng, cfg.corrupt_per_mille) {
            let at = (rng.next() as usize) % chunk.len().max(1);
            let bit = 1u8 << (rng.next() % 8);
            if let Some(byte) = chunk.get_mut(at) {
                *byte ^= bit;
            }
            shared
                .counters
                .corrupted_chunks
                .fetch_add(1, Ordering::SeqCst);
        }
        if cfg.delay_ms > 0 || cfg.jitter_ms > 0 {
            let jitter = if cfg.jitter_ms > 0 {
                rng.next() % (cfg.jitter_ms + 1)
            } else {
                0
            };
            std::thread::sleep(Duration::from_millis(cfg.delay_ms + jitter));
        }

        let copies = if duplicate { 2 } else { 1 };
        let mut broken = false;
        for _ in 0..copies {
            if !forward(&mut tx, &chunk, &cfg, &mut rng) {
                broken = true;
                break;
            }
            shared
                .counters
                .relayed_bytes
                .fetch_add(chunk.len() as u64, Ordering::SeqCst);
        }
        if broken {
            break;
        }
    }
    // Whatever ended this pump, end the whole proxied connection: a
    // half-relayed socket pair is a lie no real network tells.
    let _ = rx.shutdown(Shutdown::Both);
    let _ = tx.shutdown(Shutdown::Both);
}

/// Writes one chunk honoring the split/trickle shaping. Returns `false`
/// when the downstream socket is gone.
fn forward(tx: &mut TcpStream, chunk: &[u8], cfg: &ChaosConfig, rng: &mut Splitmix64) -> bool {
    if cfg.trickle_bytes > 0 {
        for piece in chunk.chunks(cfg.trickle_bytes) {
            if tx.write_all(piece).is_err() {
                return false;
            }
            let _ = tx.flush();
            if cfg.trickle_pause_ms > 0 {
                std::thread::sleep(Duration::from_millis(cfg.trickle_pause_ms));
            }
        }
        return true;
    }
    if cfg.split {
        let mut rest = chunk;
        while !rest.is_empty() {
            let piece_len = (1 + (rng.next() as usize) % 7).min(rest.len());
            let (piece, tail) = rest.split_at(piece_len);
            if tx.write_all(piece).is_err() {
                return false;
            }
            let _ = tx.flush();
            rest = tail;
        }
        return true;
    }
    tx.write_all(chunk).is_ok()
}

/// Rolls `threshold`-per-mille dice.
fn per_mille(rng: &mut Splitmix64, threshold: u32) -> bool {
    threshold > 0 && (rng.next() % 1000) < threshold as u64
}

/// Arms `SO_LINGER(0)` so the close below becomes a hard RST instead of
/// an orderly FIN — the peer sees `ECONNRESET` mid-read, exactly like a
/// crashed middlebox. Linux-only (driven through the platform libc, which
/// is already linked); elsewhere the reset family degrades to an abrupt
/// FIN, which exercises the same reconnect path slightly more politely.
#[cfg(target_os = "linux")]
fn arm_rst(socket: &TcpStream) {
    use std::os::fd::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    // Same C symbol `mux::bind_reuseaddr_v4` declares; keep the exact
    // signature (the kernel takes an untyped pointer either way) so the
    // two declarations don't clash.
    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
    }
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    unsafe {
        setsockopt(
            socket.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        );
    }
}

#[cfg(not(target_os = "linux"))]
fn arm_rst(_socket: &TcpStream) {}

/// The same tiny deterministic generator the rest of the workspace uses
/// for seeded harness decisions.
struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    fn new(seed: u64) -> Self {
        Splitmix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
