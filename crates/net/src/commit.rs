//! Committed-set tracking for windowed, out-of-order commits.
//!
//! With a one-message send window the receiver's resume state is a single
//! counter: the highest committed pair id. A windowed sender keeps several
//! pairs in flight, and an ack can be lost for an *older* pair while a
//! newer one completes — so "what is durably committed" becomes a set:
//! a contiguous prefix (the **low-water mark**) plus a sparse tail of
//! out-of-order commits above it. The low-water mark is what a [`Hello`]
//! announces on reconnect (a prefix claim must never overstate, or the
//! sender would drop an uncommitted pair as delivered), while membership
//! queries consult the sparse tail too, so a retransmission of an
//! out-of-order commit is still recognized as a duplicate.
//!
//! Inserting the id right above the low-water mark compacts the tail back
//! into the prefix, so in the common in-order case the set stays empty and
//! this degenerates to exactly the old single counter.
//!
//! [`Hello`]: crate::hello::Hello

use std::collections::BTreeSet;

/// The set of committed pair ids: `low` (everything `<= low` is committed)
/// plus the sparse out-of-order commits above it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommitSet {
    low: u64,
    above: BTreeSet<u64>,
}

impl CommitSet {
    /// A set whose contiguous prefix ends at `low` (0 = nothing committed);
    /// this is how a restart seeds the set from a journal watermark.
    pub fn new(low: u64) -> Self {
        CommitSet {
            low,
            above: BTreeSet::new(),
        }
    }

    /// Marks one pair id committed, compacting any tail that now joins
    /// the contiguous prefix. Ids already covered are a no-op.
    pub fn insert(&mut self, id: u64) {
        if id <= self.low {
            return;
        }
        self.above.insert(id);
        while self.above.remove(&(self.low + 1)) {
            self.low += 1;
        }
    }

    /// Whether `id` is committed (prefix or sparse tail).
    pub fn contains(&self, id: u64) -> bool {
        id <= self.low || self.above.contains(&id)
    }

    /// The contiguous-prefix bound: every id `<= low_water` is committed,
    /// and this is the only claim safe to announce in a resume hello.
    pub fn low_water(&self) -> u64 {
        self.low
    }

    /// How many commits sit above the contiguous prefix — nonzero exactly
    /// while an out-of-order interleaving is unresolved.
    pub fn sparse_len(&self) -> usize {
        self.above.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_commits_stay_a_plain_counter() {
        let mut set = CommitSet::new(0);
        for id in 1..=100 {
            set.insert(id);
            assert_eq!(set.low_water(), id);
            assert_eq!(set.sparse_len(), 0);
        }
    }

    #[test]
    fn out_of_order_commits_hold_the_low_water_mark() {
        let mut set = CommitSet::new(0);
        set.insert(1);
        set.insert(3);
        set.insert(5);
        assert_eq!(set.low_water(), 1, "the gap at 2 pins the prefix");
        assert_eq!(set.sparse_len(), 2);
        assert!(set.contains(3) && set.contains(5));
        assert!(!set.contains(2) && !set.contains(4));
        set.insert(2);
        assert_eq!(set.low_water(), 3, "filling 2 compacts through 3");
        set.insert(4);
        assert_eq!(set.low_water(), 5, "filling 4 compacts the whole tail");
        assert_eq!(set.sparse_len(), 0);
    }

    #[test]
    fn reinsertion_and_prefix_ids_are_no_ops() {
        let mut set = CommitSet::new(10);
        assert!(set.contains(7));
        set.insert(7);
        set.insert(10);
        set.insert(12);
        set.insert(12);
        assert_eq!(set.low_water(), 10);
        assert_eq!(set.sparse_len(), 1);
    }

    #[test]
    fn every_permutation_of_a_window_converges() {
        // For every order a 5-pair window's commits could land, the set
        // ends fully compacted with the same low-water mark.
        let ids = [1u64, 2, 3, 4, 5];
        let mut perms: Vec<Vec<u64>> = vec![vec![]];
        for _ in 0..ids.len() {
            let mut next = Vec::new();
            for p in &perms {
                for &id in &ids {
                    if !p.contains(&id) {
                        let mut q = p.clone();
                        q.push(id);
                        next.push(q);
                    }
                }
            }
            perms = next;
        }
        assert_eq!(perms.len(), 120);
        for perm in perms {
            let mut set = CommitSet::new(0);
            for &id in &perm {
                set.insert(id);
            }
            assert_eq!(set.low_water(), 5, "order {perm:?} failed to compact");
            assert_eq!(set.sparse_len(), 0);
        }
    }
}
