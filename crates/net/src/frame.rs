//! The TCP frame codec: `kind | len | payload | checksum`.
//!
//! TCP is a byte stream, so the socket layer needs its own framing before
//! the PR 1 [`Envelope`] reliability layer can see whole messages. Every
//! frame is `kind (u8) | len (u32 LE) | payload | FNV-1a-64 checksum`
//! (the same trailer discipline as the run journal): torn writes and
//! bit-flips are rejected here, before anything is parsed, and an
//! absurd length field is rejected *before* any allocation.
//!
//! Payload sizes are deterministic: data frames carry envelopes around the
//! fixed-width ciphertext encoding from PR 4 (`PublicKey::ciphertext_width`),
//! so frame lengths leak nothing about plaintexts or randomizers.
//!
//! [`Envelope`]: pprl_crypto::protocol::transport::Envelope

use crate::NetError;
use pprl_journal::Fnv1a64;

/// Handshake frame: a [`Hello`](crate::hello::Hello) payload.
pub const K_HELLO: u8 = 1;
/// Protocol data frame: a PR 1 `Envelope` (data or ack) as payload.
pub const K_DATA: u8 = 2;
/// End-of-session cost summary: a 96-byte `CostLedger` encoding.
pub const K_LEDGER: u8 = 3;
/// Orderly end of stream; nothing follows.
pub const K_GOODBYE: u8 = 4;
/// Admission refused for now: a [`Busy`](crate::hello::Busy) payload
/// telling the dialer when to retry. Sent by a gated
/// [`SessionMux`](crate::mux::SessionMux) in place of the hello reply.
pub const K_BUSY: u8 = 5;
/// Coalesced data frame: several PR 1 `Envelope`s in one frame (see
/// [`batch`](crate::batch)), amortizing the kind|len|checksum overhead
/// and the per-frame syscall when a windowed sender flushes a burst.
pub const K_DATA_BATCH: u8 = 6;

/// Fixed bytes around every payload: kind, length, checksum.
pub const FRAME_OVERHEAD: usize = 1 + 4 + 8;

/// Hard ceiling on a frame payload. Generous for any ciphertext batch
/// (a 4096-bit key's record message is a few KiB), tiny next to what a
/// hostile or corrupt length field could demand.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Encodes one frame ready for a single `write`.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let mut h = Fnv1a64::new();
    h.update(&buf);
    buf.extend_from_slice(&h.finish().to_le_bytes());
    buf
}

/// Incremental frame parser: feed it raw socket bytes, take whole frames
/// out. Keeping the parser separate from the socket makes the torn-frame
/// and corruption behavior directly testable (see `tests/frame_fuzz.rs`).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a whole frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Takes the next complete frame, if one is buffered.
    ///
    /// `Ok(None)` means "incomplete — read more"; errors mean the stream
    /// is unrecoverable (a frame boundary was lost), so the caller must
    /// drop the connection and reconnect.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, NetError> {
        let &[kind, l0, l1, l2, l3, ..] = self.buf.as_slice() else {
            return Ok(None);
        };
        // An unknown kind byte means the stream lost its framing (dropped
        // or duplicated bytes shifted the boundary) or the peer speaks a
        // different protocol. Reject *now* rather than trusting the
        // length field that follows: a random "length" under the cap
        // would otherwise leave the decoder waiting for bytes that never
        // come, turning a detectable desync into a silent stall.
        if !(K_HELLO..=K_DATA_BATCH).contains(&kind) {
            return Err(NetError::Frame(format!("unknown frame kind {kind}")));
        }
        let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(NetError::Frame(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
            )));
        }
        let total = FRAME_OVERHEAD + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body_end = 5 + len;
        let boundary = || NetError::Frame("frame boundary lost".into());
        let mut h = Fnv1a64::new();
        h.update(self.buf.get(..body_end).ok_or_else(boundary)?);
        let stored = u64::from_le_bytes(
            self.buf
                .get(body_end..total)
                .ok_or_else(boundary)?
                .try_into()
                .map_err(|_| NetError::Frame("checksum slice".into()))?,
        );
        if h.finish() != stored {
            return Err(NetError::Frame("frame checksum mismatch".into()));
        }
        let payload = self.buf.get(5..body_end).ok_or_else(boundary)?.to_vec();
        self.buf.drain(..total);
        Ok(Some((kind, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut dec = FrameDecoder::new();
        for (kind, payload) in [
            (K_HELLO, vec![]),
            (K_DATA, vec![0xAA; 300]),
            (K_LEDGER, (0u8..96).collect()),
            (K_GOODBYE, vec![1]),
        ] {
            dec.push(&encode_frame(kind, &payload));
            assert_eq!(dec.next_frame().unwrap(), Some((kind, payload)));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn torn_frames_wait_for_more_bytes() {
        let frame = encode_frame(K_DATA, &[7; 64]);
        let mut dec = FrameDecoder::new();
        for cut in 0..frame.len() {
            dec.push(&frame[cut..cut + 1]);
            if cut + 1 < frame.len() {
                assert_eq!(dec.next_frame().unwrap(), None, "cut at {cut}");
            }
        }
        assert_eq!(dec.next_frame().unwrap(), Some((K_DATA, vec![7; 64])));
    }

    #[test]
    fn corrupted_bytes_fail_the_checksum() {
        let frame = encode_frame(K_DATA, &[3; 32]);
        // Flip the first payload byte: length still parses, checksum must not.
        let mut bad = frame.clone();
        bad[5] ^= 0x40;
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut bad = vec![K_DATA];
        bad.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        // Deterministic sweep of the proptest property in
        // `tests/frame_fuzz.rs`: no flipped frame may ever decode. A flip
        // in the length field may legitimately leave the decoder waiting
        // (`Ok(None)`); it must never deliver.
        let frame = encode_frame(K_DATA, &[0x5A; 48]);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                let mut dec = FrameDecoder::new();
                dec.push(&bad);
                match dec.next_frame() {
                    Ok(Some(_)) => panic!("flip at byte {byte} bit {bit} delivered a frame"),
                    Ok(None) | Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn unknown_kind_is_rejected_at_the_header() {
        for kind in [0u8, 7, 19, 0xFF] {
            let mut wire = vec![kind];
            // A plausible length under the cap: without the kind check the
            // decoder would sit waiting for this phantom payload forever.
            wire.extend_from_slice(&1024u32.to_le_bytes());
            let mut dec = FrameDecoder::new();
            dec.push(&wire);
            assert!(dec.next_frame().is_err(), "kind {kind} was not rejected");
        }
    }

    #[test]
    fn back_to_back_frames_in_one_push() {
        let mut wire = encode_frame(K_DATA, &[1]);
        wire.extend_from_slice(&encode_frame(K_GOODBYE, &[]));
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_frame().unwrap(), Some((K_DATA, vec![1])));
        assert_eq!(dec.next_frame().unwrap(), Some((K_GOODBYE, vec![])));
        assert_eq!(dec.next_frame().unwrap(), None);
    }
}
