//! The connect/accept handshake.
//!
//! The first frame on every connection — including every *re*connection —
//! is a `Hello`. It binds the link to a protocol version, a party role,
//! the comparator backend, and the job fingerprint (the same FNV-1a-64
//! the run journal header uses), so a party whose inputs or configuration
//! drifted is refused before any ciphertext moves. The backend byte is
//! checked *before* the fingerprint: two parties configured for different
//! comparison protocols get the typed [`NetError::BackendMismatch`]
//! naming both sides, not a generic drift message. The resume fields make
//! reconnection idempotent: the peer learns exactly how far this side's
//! durable state reaches and retransmits only what lies beyond it.

use crate::NetError;

/// Wire magic opening every `Hello` payload.
pub const HELLO_MAGIC: &[u8; 4] = b"PNET";

/// Protocol version; bumped on any incompatible frame/handshake change.
/// v2 added the comparator-backend byte to the hello payload.
pub const NET_VERSION: u16 = 2;

/// Fixed `Hello` payload size.
pub const HELLO_LEN: usize = 4 + 2 + 1 + 1 + 8 + 8 + 1;

/// Which of the paper's three parties a peer claims to be.
/// (Numeric values are wire format — do not reorder.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// Data holder R (sends `m_alice` to Bob).
    Alice = 0,
    /// Data holder S (masks and forwards to the querier).
    Bob = 1,
    /// Querying party (holds the Paillier private key, decides matches).
    Query = 2,
}

impl Role {
    /// Parses a CLI role name.
    pub fn parse(name: &str) -> Option<Role> {
        match name {
            "alice" => Some(Role::Alice),
            "bob" => Some(Role::Bob),
            "query" | "querier" => Some(Role::Query),
            _ => None,
        }
    }

    fn from_wire(byte: u8) -> Option<Role> {
        match byte {
            0 => Some(Role::Alice),
            1 => Some(Role::Bob),
            2 => Some(Role::Query),
            _ => None,
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Role::Alice => "alice",
            Role::Bob => "bob",
            Role::Query => "query",
        })
    }
}

/// Comparator backend family, as carried in the hello payload.
/// (Numeric values are wire format — they mirror
/// `SmcMode::backend_code`; do not reorder.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Paillier SMC exchange (exact decisions, ciphertext frames).
    Paillier = 0,
    /// q-gram CLK Bloom-filter exchange (Dice decisions, filter frames).
    Bloom = 1,
}

impl Backend {
    /// Maps `SmcMode::backend_code` onto the wire enum.
    pub fn from_code(code: u8) -> Option<Backend> {
        match code {
            0 => Some(Backend::Paillier),
            1 => Some(Backend::Bloom),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Paillier => "paillier",
            Backend::Bloom => "bloom",
        })
    }
}

/// Handshake announcement: who is connecting, for which job, with which
/// comparison protocol, and how far the announcer's durable state already
/// reaches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Announcer's protocol version.
    pub version: u16,
    /// Announcer's party role.
    pub role: Role,
    /// Announcer's comparator backend.
    pub backend: Backend,
    /// Job fingerprint (config + datasets), as in the journal header.
    pub fingerprint: u64,
    /// Highest data `pair_id` the announcer has durably completed on this
    /// link (`0` = none; real pair ids start at 1).
    pub watermark: u64,
    /// Whether the announcer already holds the session public key
    /// (`true` on resume, telling the querier not to re-broadcast;
    /// always `false` on keyless backends).
    pub have_key: bool,
}

impl Hello {
    /// A fresh session's announcement.
    pub fn new(role: Role, backend: Backend, fingerprint: u64) -> Self {
        Hello {
            version: NET_VERSION,
            role,
            backend,
            fingerprint,
            watermark: 0,
            have_key: false,
        }
    }

    /// Serializes to the fixed-width payload of a `K_HELLO` frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HELLO_LEN);
        buf.extend_from_slice(HELLO_MAGIC);
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.push(self.role as u8);
        buf.push(self.backend as u8);
        buf.extend_from_slice(&self.fingerprint.to_le_bytes());
        buf.extend_from_slice(&self.watermark.to_le_bytes());
        buf.push(self.have_key as u8);
        buf
    }

    /// Parses a `K_HELLO` payload.
    pub fn decode(payload: &[u8]) -> Result<Hello, NetError> {
        // One slice pattern covers every field and the length check at
        // once, with no indexing to go out of range.
        let &[m0, m1, m2, m3, v0, v1, role_byte, backend_byte, f0, f1, f2, f3, f4, f5, f6, f7, w0, w1, w2, w3, w4, w5, w6, w7, key_byte] =
            payload
        else {
            return Err(NetError::Handshake(format!(
                "hello payload has {} bytes, expected {HELLO_LEN}",
                payload.len()
            )));
        };
        if [m0, m1, m2, m3] != *HELLO_MAGIC {
            return Err(NetError::Handshake("bad hello magic".into()));
        }
        let version = u16::from_le_bytes([v0, v1]);
        let role = Role::from_wire(role_byte)
            .ok_or_else(|| NetError::Handshake(format!("unknown role byte {role_byte}")))?;
        let backend = Backend::from_code(backend_byte)
            .ok_or_else(|| NetError::Handshake(format!("unknown backend byte {backend_byte}")))?;
        let fingerprint = u64::from_le_bytes([f0, f1, f2, f3, f4, f5, f6, f7]);
        let watermark = u64::from_le_bytes([w0, w1, w2, w3, w4, w5, w6, w7]);
        let have_key = match key_byte {
            0 => false,
            1 => true,
            other => {
                return Err(NetError::Handshake(format!("bad have_key byte {other}")));
            }
        };
        Ok(Hello {
            version,
            role,
            backend,
            fingerprint,
            watermark,
            have_key,
        })
    }

    /// Checks a peer's hello against what this side expects. Ordered so
    /// the most specific refusal wins: version, role, then backend (typed
    /// — a backend split is an operator configuration error worth naming
    /// precisely), then the catch-all fingerprint.
    pub fn verify(
        &self,
        expect_role: Role,
        expect_backend: Backend,
        fingerprint: u64,
    ) -> Result<(), NetError> {
        if self.version != NET_VERSION {
            return Err(NetError::Handshake(format!(
                "peer speaks net protocol v{}, this build speaks v{NET_VERSION}",
                self.version
            )));
        }
        if self.role != expect_role {
            return Err(NetError::Handshake(format!(
                "expected the {expect_role} party, peer claims {}",
                self.role
            )));
        }
        if self.backend != expect_backend {
            return Err(NetError::BackendMismatch {
                ours: expect_backend,
                peer: self.backend,
            });
        }
        if self.fingerprint != fingerprint {
            return Err(NetError::Handshake(format!(
                "job fingerprint mismatch (ours {fingerprint:016x}, peer {:016x}): \
                 the parties do not share identical inputs and configuration",
                self.fingerprint
            )));
        }
        Ok(())
    }
}

/// Wire magic opening every `Busy` payload.
pub const BUSY_MAGIC: &[u8; 4] = b"PBSY";

/// Fixed `Busy` payload size.
pub const BUSY_LEN: usize = 4 + 8;

/// Bounded-admission pushback: the reply a gated listener sends in place
/// of a hello when the job is known but cannot start yet (the daemon is
/// at its concurrency cap, or draining). The dialer holds its state,
/// sleeps `retry_after_ms` off-ledger, and re-dials; nothing about the
/// session is lost or duplicated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy {
    /// Suggested pause before the dialer's next attempt.
    pub retry_after_ms: u64,
}

impl Busy {
    /// Serializes to the fixed-width payload of a `K_BUSY` frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(BUSY_LEN);
        buf.extend_from_slice(BUSY_MAGIC);
        buf.extend_from_slice(&self.retry_after_ms.to_le_bytes());
        buf
    }

    /// Parses a `K_BUSY` payload.
    pub fn decode(payload: &[u8]) -> Result<Busy, NetError> {
        let &[m0, m1, m2, m3, r0, r1, r2, r3, r4, r5, r6, r7] = payload else {
            return Err(NetError::Handshake(format!(
                "busy payload has {} bytes, expected {BUSY_LEN}",
                payload.len()
            )));
        };
        if [m0, m1, m2, m3] != *BUSY_MAGIC {
            return Err(NetError::Handshake("bad busy magic".into()));
        }
        Ok(Busy {
            retry_after_ms: u64::from_le_bytes([r0, r1, r2, r3, r4, r5, r6, r7]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_roundtrips() {
        let b = Busy {
            retry_after_ms: 1_234,
        };
        let bytes = b.encode();
        assert_eq!(bytes.len(), BUSY_LEN);
        assert_eq!(Busy::decode(&bytes).unwrap(), b);
        assert!(Busy::decode(&bytes[..BUSY_LEN - 1]).is_err());
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(Busy::decode(&bad).is_err());
    }

    #[test]
    fn hello_roundtrips() {
        let mut h = Hello::new(Role::Bob, Backend::Paillier, 0xDEAD_BEEF_0BAD_F00D);
        h.watermark = 41;
        h.have_key = true;
        let bytes = h.encode();
        assert_eq!(bytes.len(), HELLO_LEN);
        assert_eq!(Hello::decode(&bytes).unwrap(), h);

        let b = Hello::new(Role::Alice, Backend::Bloom, 7);
        assert_eq!(Hello::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn verify_rejects_drift() {
        let h = Hello::new(Role::Alice, Backend::Paillier, 7);
        assert!(h.verify(Role::Alice, Backend::Paillier, 7).is_ok());
        assert!(h.verify(Role::Bob, Backend::Paillier, 7).is_err());
        assert!(h.verify(Role::Alice, Backend::Paillier, 8).is_err());
        let mut stale = h;
        stale.version = 0;
        assert!(stale.verify(Role::Alice, Backend::Paillier, 7).is_err());
    }

    #[test]
    fn verify_backend_split_is_typed_and_beats_fingerprint() {
        let h = Hello::new(Role::Alice, Backend::Bloom, 7);
        // Same fingerprint, different backend: typed refusal.
        match h.verify(Role::Alice, Backend::Paillier, 7) {
            Err(NetError::BackendMismatch { ours, peer }) => {
                assert_eq!(ours, Backend::Paillier);
                assert_eq!(peer, Backend::Bloom);
            }
            other => panic!("expected BackendMismatch, got {other:?}"),
        }
        // Backend split *and* fingerprint drift: the backend error wins
        // (it names the actual misconfiguration).
        assert!(matches!(
            h.verify(Role::Alice, Backend::Paillier, 8),
            Err(NetError::BackendMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let good = Hello::new(Role::Query, Backend::Paillier, 1).encode();
        assert!(Hello::decode(&good[..HELLO_LEN - 1]).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(Hello::decode(&bad_magic).is_err());
        let mut bad_role = good.clone();
        bad_role[6] = 9;
        assert!(Hello::decode(&bad_role).is_err());
        let mut bad_backend = good.clone();
        bad_backend[7] = 7;
        assert!(Hello::decode(&bad_backend).is_err());
        let mut bad_flag = good;
        bad_flag[24] = 2;
        assert!(Hello::decode(&bad_flag).is_err());
    }
}
