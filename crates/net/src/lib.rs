//! # pprl-net — real TCP networking for the three-party SMC protocol
//!
//! The paper's SMC step (§V-A) is a distributed protocol: Alice, Bob, and
//! the querying party exchange Paillier ciphertexts over a network. Earlier
//! PRs ran all three inside one process over an in-memory [`Transport`];
//! this crate carries the *same* wire protocol over `std::net::TcpStream`:
//!
//! - [`frame`] — length-prefixed, checksummed frame codec (torn frames,
//!   bit-flips, and hostile length fields rejected before parsing);
//! - [`hello`] — connect/accept handshake: protocol version, party role,
//!   and job-fingerprint exchange, plus resume watermarks so reconnection
//!   is idempotent;
//! - [`stream`] — one framed socket with read/write timeouts;
//! - [`peer`] — [`PeerChannel`]: the PR 1 `Envelope` ack/seq reliability
//!   layer over a socket, with reconnect-with-resume (a dead peer degrades
//!   exactly like a retry-exhausted pair, it never aborts the run);
//! - [`mux`] — [`SessionMux`]: one listener serving concurrent sessions,
//!   routing handshaken connections by job fingerprint;
//! - [`transport`] — [`TcpTransport`]: `crypto::protocol::Transport` over
//!   loopback socket pairs, so the existing `ReliableLink`/`FaultyTransport`
//!   stack runs unchanged over real kernels' TCP.
//!
//! Everything here is stdlib-only (enforced by the D001 dependency policy);
//! the only non-std dependencies are workspace crates.
//!
//! [`Transport`]: pprl_crypto::protocol::Transport

pub mod batch;
pub mod chaos;
pub mod commit;
pub mod frame;
pub mod hello;
pub mod mux;
pub mod peer;
pub mod state;
pub mod stream;
pub(crate) mod trace;
pub mod transport;

pub use batch::{decode_batch, encode_batch, BATCH_MIN_LEN};
pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats};
pub use commit::CommitSet;
pub use frame::{encode_frame, FrameDecoder, FRAME_OVERHEAD, MAX_FRAME_LEN};
pub use hello::{Backend, Busy, Hello, Role, NET_VERSION};
pub use mux::{Admission, AdmissionGate, MuxLimits, SessionMux};
pub use peer::{IncomingData, PeerChannel, ReconnectPolicy};
pub use state::{Phase, ProtocolState};
pub use stream::FramedStream;
pub use transport::TcpTransport;

/// Errors from the socket layer.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error; the connection is unusable.
    Io(std::io::Error),
    /// The peer closed the connection (EOF).
    Disconnected,
    /// Nothing arrived within the read timeout; the connection survives.
    Timeout,
    /// Frame-codec violation (bad checksum, oversized length): the byte
    /// stream lost its framing, so the connection must be re-established.
    Frame(String),
    /// Handshake refused (version/role/fingerprint mismatch).
    Handshake(String),
    /// Handshake refused because the parties are configured for
    /// different comparator backends — a typed variant (rather than a
    /// `Handshake` string) so operators and tests can distinguish "you
    /// launched `--backend bloom` against a paillier party" from generic
    /// config drift. Fatal: reconnecting cannot fix a configuration.
    BackendMismatch {
        /// The backend this side runs.
        ours: hello::Backend,
        /// The backend the peer announced.
        peer: hello::Backend,
    },
    /// The peer stayed unreachable past the reconnect policy's deadline.
    PeerGone(String),
    /// The listener knows the job but cannot admit it yet (concurrency
    /// cap or drain); the payload is the suggested retry pause in ms.
    /// Transient: the dialer's reconnect loop absorbs it.
    Busy(u64),
    /// The peer sent something protocol-incoherent (wrong frame kind,
    /// wrong pair id) that dedup/reconnect cannot explain.
    Protocol(String),
    /// A frame arrived out of phase: a valid frame kind that the
    /// per-connection [`ProtocolState`] does not admit right now
    /// (handshake frames mid-session, data after the ledger, a
    /// wrong-sized payload for a fixed-width kind). The receiver drops
    /// *that connection only* — the session survives via reconnect, and
    /// a daemon never wedges on it.
    ProtocolViolation(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Disconnected => write!(f, "peer closed the connection"),
            NetError::Timeout => write!(f, "read timed out"),
            NetError::Frame(why) => write!(f, "frame error: {why}"),
            NetError::Handshake(why) => write!(f, "handshake refused: {why}"),
            NetError::BackendMismatch { ours, peer } => write!(
                f,
                "comparator backend mismatch: this party runs the {ours} backend, \
                 peer announced {peer}; all three parties must be launched with \
                 the same --backend"
            ),
            NetError::PeerGone(why) => write!(f, "peer unreachable: {why}"),
            NetError::Busy(ms) => write!(f, "peer busy, retry in {ms} ms"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::ProtocolViolation(why) => write!(f, "protocol state violation: {why}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Wire-level accounting, kept *separate* from the protocol
/// [`CostLedger`](pprl_crypto::CostLedger) on purpose: the ledger meters
/// the protocol (and must match the in-process run byte for byte), while
/// these counters meter what this deployment's network did to deliver it —
/// retransmissions, reconnects, and duplicate suppression included.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames written to sockets (handshakes, data, acks, summaries).
    pub frames_sent: u64,
    /// Frames read off sockets.
    pub frames_received: u64,
    /// Bytes written, including frame overhead.
    pub bytes_sent: u64,
    /// Bytes read, including frame overhead.
    pub bytes_received: u64,
    /// Data envelopes sent again (timeout or reconnect).
    pub retransmits: u64,
    /// Duplicate data envelopes received and re-acked without processing.
    pub duplicates: u64,
    /// Connections (re-)established after the initial handshake.
    pub reconnects: u64,
    /// `Busy` pushbacks: received and honored (dialer side), or sent in
    /// place of admission (gated listener side).
    pub busy: u64,
    /// Total time slept in reconnect backoff and busy pauses. Off-ledger
    /// by construction: deployment patience, not protocol cost.
    pub backoff_ms: u64,
    /// Fresh data envelopes acked-and-discarded while draining a channel
    /// that stopped consuming (deadline expiry): the peer completes its
    /// walk, this side no longer processes the payloads.
    pub drained: u64,
    /// Frames rejected by the per-connection [`ProtocolState`] (wrong
    /// phase, wrong size, handshake replay). Each one cost the offending
    /// connection, nothing else.
    pub violations: u64,
    /// Connections closed before their handshake because the listener was
    /// at its concurrent-connection cap.
    pub refused: u64,
    /// Parked connections discarded by the idle reaper before any worker
    /// claimed them.
    pub reaped: u64,
    /// Coalesced [`K_DATA_BATCH`](crate::frame::K_DATA_BATCH) frames sent
    /// by a windowed sender flushing more than one envelope at once.
    pub batches_sent: u64,
    /// Data envelopes that traveled inside those batch frames (each one
    /// saved a frame header and a syscall relative to a solo send).
    pub batched_envelopes: u64,
    /// High-water mark of concurrently unacknowledged windowed sends —
    /// the observed window occupancy, `max`-merged rather than summed.
    pub max_window: u64,
}

impl NetStats {
    /// Folds another party/channel's counters into this one.
    pub fn merge(&mut self, other: &NetStats) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.retransmits += other.retransmits;
        self.duplicates += other.duplicates;
        self.reconnects += other.reconnects;
        self.busy += other.busy;
        self.backoff_ms += other.backoff_ms;
        self.drained += other.drained;
        self.violations += other.violations;
        self.refused += other.refused;
        self.reaped += other.reaped;
        self.batches_sent += other.batches_sent;
        self.batched_envelopes += other.batched_envelopes;
        self.max_window = self.max_window.max(other.max_window);
    }
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} frames out / {} in, {} bytes out / {} in, {} retransmits, {} dups, \
             {} reconnects, {} busy, {} ms backoff, {} drained, {} violations, \
             {} refused, {} reaped, {} batches ({} coalesced), window peak {}",
            self.frames_sent,
            self.frames_received,
            self.bytes_sent,
            self.bytes_received,
            self.retransmits,
            self.duplicates,
            self.reconnects,
            self.busy,
            self.backoff_ms,
            self.drained,
            self.violations,
            self.refused,
            self.reaped,
            self.batches_sent,
            self.batched_envelopes,
            self.max_window
        )
    }
}
