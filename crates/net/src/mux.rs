//! One listener, many sessions.
//!
//! A daemonized party binds a single `TcpListener` and may serve several
//! SMC sessions (and several reconnections per session) concurrently. The
//! mux owns the accept loop on a background thread: it reads each new
//! connection's `Hello`, then routes the handshaken stream into a mailbox
//! keyed by `(job fingerprint, peer role)`. Session workers — e.g. spawned
//! over `pprl-runtime` threads — block on [`SessionMux::wait_conn`] for
//! their own key, so concurrent sessions resolve deterministically no
//! matter the order connections arrive in.

use crate::frame::K_HELLO;
use crate::hello::{Hello, Role};
use crate::stream::FramedStream;
use crate::{NetError, NetStats};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long the accept loop waits for a new connection's `Hello` before
/// dropping it (an unresponsive dialer must not stall other sessions).
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

struct MuxShared {
    shutdown: AtomicBool,
    mailboxes: Mutex<HashMap<(u64, Role), Vec<(FramedStream, Hello)>>>,
    arrived: Condvar,
    stats: Mutex<NetStats>,
    /// Read/write timeout applied to streams after their hello clears.
    stream_timeout: Option<Duration>,
}

/// A shared listener routing handshaken connections to session workers.
pub struct SessionMux {
    local_addr: SocketAddr,
    shared: Arc<MuxShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl SessionMux {
    /// Binds `addr` (use port `0` for an ephemeral port) and starts the
    /// accept loop. `stream_timeout` is inherited by every accepted
    /// stream as its read/write timeout.
    pub fn bind(addr: &str, stream_timeout: Option<Duration>) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(MuxShared {
            shutdown: AtomicBool::new(false),
            mailboxes: Mutex::new(HashMap::new()),
            arrived: Condvar::new(),
            stats: Mutex::new(NetStats::default()),
            stream_timeout,
        });
        let worker = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("pprl-net-accept".into())
            .spawn(move || accept_loop(listener, worker))?;
        Ok(SessionMux {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the kernel-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Wire accounting for the handshakes the accept loop performed.
    pub fn stats(&self) -> NetStats {
        self.shared
            .stats
            .lock()
            .map(|s| *s)
            .unwrap_or_default()
    }

    /// Blocks until a connection whose `Hello` matches `(fingerprint,
    /// role)` arrives, up to `deadline`. Returns the handshaken stream and
    /// the peer's announcement; the caller still owes the reply `Hello`.
    pub fn wait_conn(
        &self,
        fingerprint: u64,
        role: Role,
        deadline: Duration,
    ) -> Result<(FramedStream, Hello), NetError> {
        let start = Instant::now();
        let mut boxes = self
            .shared
            .mailboxes
            .lock()
            .map_err(|_| NetError::Protocol("mux mailbox lock poisoned".into()))?;
        loop {
            if let Some(queue) = boxes.get_mut(&(fingerprint, role)) {
                if !queue.is_empty() {
                    let (stream, hello) = queue.remove(0);
                    return Ok((stream, hello));
                }
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return Err(NetError::PeerGone(format!(
                    "no {role} connection for job {fingerprint:016x} within {deadline:?}"
                )));
            }
            let (next, timeout) = self
                .shared
                .arrived
                .wait_timeout(boxes, deadline - elapsed)
                .map_err(|_| NetError::Protocol("mux mailbox lock poisoned".into()))?;
            boxes = next;
            if timeout.timed_out() {
                return Err(NetError::PeerGone(format!(
                    "no {role} connection for job {fingerprint:016x} within {deadline:?}"
                )));
            }
        }
    }
}

impl Drop for SessionMux {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<MuxShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((socket, _)) => {
                // Read the dialer's hello with a short dedicated timeout,
                // then hand the stream over at the session's own timeout.
                let hello = FramedStream::new(socket, Some(HELLO_TIMEOUT))
                    .and_then(|mut stream| {
                        let mut stats = NetStats::default();
                        let (kind, payload) = stream.recv(&mut stats)?;
                        if let Ok(mut total) = shared.stats.lock() {
                            total.merge(&stats);
                        }
                        if kind != K_HELLO {
                            return Err(NetError::Handshake(format!(
                                "first frame was kind {kind}, expected hello"
                            )));
                        }
                        stream.set_read_timeout(shared.stream_timeout)?;
                        Ok((stream, Hello::decode(&payload)?))
                    });
                match hello {
                    Ok((stream, hello)) => {
                        if let Ok(mut boxes) = shared.mailboxes.lock() {
                            boxes
                                .entry((hello.fingerprint, hello.role))
                                .or_default()
                                .push((stream, hello));
                        }
                        shared.arrived.notify_all();
                    }
                    // A connection that never identified itself is simply
                    // dropped; legitimate peers re-dial and try again.
                    Err(_) => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::K_DATA;
    use std::net::TcpStream;

    fn dial_with_hello(addr: SocketAddr, hello: Hello) -> FramedStream {
        let socket = TcpStream::connect(addr).unwrap();
        let mut stream = FramedStream::new(socket, Some(Duration::from_secs(5))).unwrap();
        let mut stats = NetStats::default();
        stream.send(K_HELLO, &hello.encode(), &mut stats).unwrap();
        stream
    }

    #[test]
    fn routes_by_fingerprint_and_role() {
        let mux = SessionMux::bind("127.0.0.1:0", Some(Duration::from_secs(5))).unwrap();
        let addr = mux.local_addr();
        let mut a = dial_with_hello(addr, Hello::new(Role::Alice, 10));
        let mut b = dial_with_hello(addr, Hello::new(Role::Bob, 10));
        // Ask for Bob first even though Alice dialed first.
        let (_, hb) = mux
            .wait_conn(10, Role::Bob, Duration::from_secs(5))
            .unwrap();
        assert_eq!(hb.role, Role::Bob);
        let (_, ha) = mux
            .wait_conn(10, Role::Alice, Duration::from_secs(5))
            .unwrap();
        assert_eq!(ha.role, Role::Alice);
        let mut stats = NetStats::default();
        a.send(K_DATA, &[1], &mut stats).unwrap();
        b.send(K_DATA, &[2], &mut stats).unwrap();
    }

    #[test]
    fn concurrent_sessions_resolve_deterministically() {
        let mux = std::sync::Arc::new(
            SessionMux::bind("127.0.0.1:0", Some(Duration::from_secs(5))).unwrap(),
        );
        let addr = mux.local_addr();
        let fingerprints: Vec<u64> = (100..108).collect();
        // Dial all sessions before any worker claims one.
        let _dialers: Vec<FramedStream> = fingerprints
            .iter()
            .map(|&fp| dial_with_hello(addr, Hello::new(Role::Alice, fp)))
            .collect();
        // Workers on pprl-runtime threads each wait for their own session.
        let got = pprl_runtime::par_map(&fingerprints, 4, |_, &fp| {
            let (_, hello) = mux
                .wait_conn(fp, Role::Alice, Duration::from_secs(5))
                .unwrap();
            hello.fingerprint
        });
        assert_eq!(got, fingerprints);
    }

    #[test]
    fn wait_conn_times_out_when_nobody_dials() {
        let mux = SessionMux::bind("127.0.0.1:0", Some(Duration::from_secs(1))).unwrap();
        let err = mux
            .wait_conn(1, Role::Bob, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, NetError::PeerGone(_)));
    }
}
