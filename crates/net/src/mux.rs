//! One listener, many sessions.
//!
//! A daemonized party binds a single `TcpListener` and may serve several
//! SMC sessions (and several reconnections per session) concurrently. The
//! mux owns the accept loop on a background thread: it reads each new
//! connection's `Hello`, then routes the handshaken stream into a mailbox
//! keyed by `(job fingerprint, peer role)`. Session workers — e.g. spawned
//! over `pprl-runtime` threads — block on [`SessionMux::wait_conn`] for
//! their own key, so concurrent sessions resolve deterministically no
//! matter the order connections arrive in.

use crate::frame::{K_BUSY, K_HELLO};
use crate::hello::{Backend, Busy, Hello, Role};
use crate::state::ProtocolState;
use crate::stream::FramedStream;
use crate::trace::net_trace;
use crate::{NetError, NetStats};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long the accept loop waits for a new connection's `Hello` before
/// dropping it (an unresponsive dialer must not stall other sessions).
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the listener will block writing the typed `Busy` refusal to a
/// connection it cannot supervise (cap reached). Best-effort: a dialer
/// too slow to take five bytes gets a plain close instead.
const REFUSAL_WRITE_TIMEOUT: Duration = Duration::from_millis(200);

/// Retry hint carried by a cap refusal. Deliberately short: the cap
/// guards against connection floods, not long-lived oversubscription, so
/// an honest dialer that hits it should come straight back.
const REFUSAL_RETRY: Duration = Duration::from_millis(100);

/// How often the accept loop sweeps parked mailboxes for idle streams.
const REAP_INTERVAL: Duration = Duration::from_millis(250);

/// Connection-supervision knobs for a listening mux.
#[derive(Clone, Copy, Debug)]
pub struct MuxLimits {
    /// Per-connection budget for the `Hello` to arrive. Each connection
    /// burns its own budget on a greeter thread — a slowloris dialer
    /// stalls only itself, never the accept loop.
    pub handshake_timeout: Duration,
    /// Ceiling on connections inside their handshake at once. Beyond it
    /// new connections get a typed [`Busy`] refusal and a close, so a
    /// connection flood cannot pile up greeter threads.
    pub max_conns: usize,
    /// Discard a parked (handshaken but unclaimed) stream after this
    /// long. `None` keeps streams parked until replaced or claimed.
    pub idle_timeout: Option<Duration>,
}

impl Default for MuxLimits {
    fn default() -> Self {
        MuxLimits {
            handshake_timeout: HELLO_TIMEOUT,
            max_conns: 64,
            idle_timeout: None,
        }
    }
}

/// Binds the listener — with `SO_REUSEADDR` on Linux, so a restarted
/// daemon can rebind its announced port while the dead process's
/// connections still linger in `TIME_WAIT`/`FIN_WAIT`. `std` offers no
/// pre-bind socket options, so the Linux path drives the platform libc
/// (already linked) directly; everywhere else this is a plain
/// `TcpListener::bind`, and a quick restart may have to wait the port
/// out.
pub(crate) fn bind_listener(addr: &str) -> std::io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        use std::net::ToSocketAddrs;
        let mut last: Option<std::io::Error> = None;
        for candidate in addr.to_socket_addrs()? {
            let bound = match candidate {
                SocketAddr::V4(v4) => bind_reuseaddr_v4(v4),
                other => TcpListener::bind(other),
            };
            match bound {
                Ok(listener) => return Ok(listener),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }
    #[cfg(not(target_os = "linux"))]
    TcpListener::bind(addr)
}

/// `socket` + `SO_REUSEADDR` + `bind` + `listen`, handed back to `std` as
/// a regular `TcpListener`. IPv4 only; v6 candidates take the plain path.
#[cfg(target_os = "linux")]
fn bind_reuseaddr_v4(addr: std::net::SocketAddrV4) -> std::io::Result<TcpListener> {
    use std::os::fd::FromRawFd;

    // struct sockaddr_in, fixed 16-byte layout; port and address are
    // already big-endian on the wire side.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: [u8; 2],
        addr: [u8; 4],
        zero: [u8; 8],
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        // From here every failure path must release the raw fd.
        let fail = |fd: i32| {
            let e = std::io::Error::last_os_error();
            close(fd);
            Err(e)
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) < 0 {
            return fail(fd);
        }
        let sa = SockaddrIn {
            family: AF_INET as u16,
            port: addr.port().to_be_bytes(),
            addr: addr.ip().octets(),
            zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) < 0 {
            return fail(fd);
        }
        if listen(fd, 128) < 0 {
            return fail(fd);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// What a gated listener does with an identified connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Route the stream to its session mailbox as usual.
    Accept,
    /// Known job, no capacity: answer with a typed [`Busy`] frame telling
    /// the dialer when to come back, then close. Bounded memory — the
    /// stream is never queued.
    Busy {
        /// Suggested pause before the dialer's next attempt.
        retry_after: Duration,
    },
    /// Unknown or terminal job: close without a reply. Legitimate peers
    /// of live jobs never see this; a drifted or stale dialer gives up at
    /// its own reconnect deadline.
    Refuse,
}

/// Admission policy consulted by the accept loop for every identified
/// connection, *including reconnections* — gates must admit peers of
/// jobs already in flight or crash recovery deadlocks.
pub type AdmissionGate = Arc<dyn Fn(&Hello) -> Admission + Send + Sync>;

/// A handshaken connection parked until its session worker claims it,
/// keyed in the mailbox map by (job fingerprint, peer role). The instant
/// records when it was parked, for the idle reaper.
type Mailboxes = HashMap<(u64, Role), Vec<(FramedStream, Hello, Instant)>>;

struct MuxShared {
    shutdown: AtomicBool,
    mailboxes: Mutex<Mailboxes>,
    arrived: Condvar,
    stats: Mutex<NetStats>,
    /// Read/write timeout applied to streams after their hello clears.
    stream_timeout: Option<Duration>,
    /// Admission policy; `None` admits everything (one-shot party mode).
    gate: Option<AdmissionGate>,
    /// Supervision knobs (handshake deadline, connection cap, idle reap).
    limits: MuxLimits,
    /// Connections currently inside their handshake (greeter threads).
    greeting: AtomicUsize,
    /// This listener's own role and comparator backend, when declared
    /// ([`SessionMux::set_identity`]). A dialer announcing a different
    /// backend is refused *in the greeter* with a reply hello carrying
    /// our identity: without this, a backend split also splits the job
    /// fingerprint, the connection parks in a mailbox no worker ever
    /// claims, and both sides time out with an unexplained `PeerGone`
    /// instead of the typed [`NetError::BackendMismatch`].
    identity: Mutex<Option<(Role, Backend)>>,
}

/// A shared listener routing handshaken connections to session workers.
pub struct SessionMux {
    local_addr: SocketAddr,
    shared: Arc<MuxShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl SessionMux {
    /// Binds `addr` (use port `0` for an ephemeral port) and starts the
    /// accept loop. `stream_timeout` is inherited by every accepted
    /// stream as its read/write timeout.
    pub fn bind(addr: &str, stream_timeout: Option<Duration>) -> Result<Self, NetError> {
        Self::bind_gated(addr, stream_timeout, None)
    }

    /// [`bind`](Self::bind) with an admission gate: every identified
    /// connection is offered to `gate` before it reaches a mailbox, so a
    /// daemon can bound concurrent sessions ([`Admission::Busy`]) and
    /// refuse unknown or finished jobs ([`Admission::Refuse`]).
    pub fn bind_gated(
        addr: &str,
        stream_timeout: Option<Duration>,
        gate: Option<AdmissionGate>,
    ) -> Result<Self, NetError> {
        Self::bind_supervised(addr, stream_timeout, gate, MuxLimits::default())
    }

    /// [`bind_gated`](Self::bind_gated) with explicit supervision limits:
    /// per-connection handshake deadline, concurrent-handshake cap, and
    /// idle reaping for parked streams.
    pub fn bind_supervised(
        addr: &str,
        stream_timeout: Option<Duration>,
        gate: Option<AdmissionGate>,
        limits: MuxLimits,
    ) -> Result<Self, NetError> {
        let listener = bind_listener(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(MuxShared {
            shutdown: AtomicBool::new(false),
            mailboxes: Mutex::new(HashMap::new()),
            arrived: Condvar::new(),
            stats: Mutex::new(NetStats::default()),
            stream_timeout,
            gate,
            limits,
            greeting: AtomicUsize::new(0),
            identity: Mutex::new(None),
        });
        let worker = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("pprl-net-accept".into())
            .spawn(move || accept_loop(listener, worker))?;
        Ok(SessionMux {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the kernel-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Declares this listener's role and comparator backend, arming the
    /// greeter-side backend check: a dialer announcing a different
    /// backend gets an immediate reply hello carrying this identity (so
    /// *its* `verify` surfaces the typed [`NetError::BackendMismatch`])
    /// and is never parked. Without a declared identity every backend is
    /// parked as-is (mux unit tests; callers that verify in the worker).
    pub fn set_identity(&self, role: Role, backend: Backend) {
        if let Ok(mut id) = self.shared.identity.lock() {
            *id = Some((role, backend));
        }
    }

    /// Wire accounting for the handshakes the accept loop performed.
    pub fn stats(&self) -> NetStats {
        self.shared
            .stats
            .lock()
            .map(|s| *s)
            .unwrap_or_default()
    }

    /// Blocks until a connection whose `Hello` matches `(fingerprint,
    /// role)` arrives, up to `deadline`. Returns the handshaken stream and
    /// the peer's announcement; the caller still owes the reply `Hello`.
    pub fn wait_conn(
        &self,
        fingerprint: u64,
        role: Role,
        deadline: Duration,
    ) -> Result<(FramedStream, Hello), NetError> {
        let start = Instant::now();
        let mut boxes = self
            .shared
            .mailboxes
            .lock()
            .map_err(|_| NetError::Protocol("mux mailbox lock poisoned".into()))?;
        loop {
            if let Some(queue) = boxes.get_mut(&(fingerprint, role)) {
                if !queue.is_empty() {
                    let (stream, hello, _parked_at) = queue.remove(0);
                    net_trace!("mux claim {role} for {fingerprint:016x}");
                    return Ok((stream, hello));
                }
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return Err(NetError::PeerGone(format!(
                    "no {role} connection for job {fingerprint:016x} within {deadline:?}"
                )));
            }
            let (next, timeout) = self
                .shared
                .arrived
                .wait_timeout(boxes, deadline - elapsed)
                .map_err(|_| NetError::Protocol("mux mailbox lock poisoned".into()))?;
            boxes = next;
            if timeout.timed_out() {
                return Err(NetError::PeerGone(format!(
                    "no {role} connection for job {fingerprint:016x} within {deadline:?}"
                )));
            }
        }
    }
}

impl Drop for SessionMux {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<MuxShared>) {
    let mut last_reap = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((socket, _)) => {
                // The accept thread never reads from a connection: each
                // one goes to a short-lived greeter with its own deadline,
                // so a slowloris dialer stalls only its own greeter while
                // honest admissions flow past it (the old inline
                // handshake serialized *everyone* behind the slowest
                // dialer).
                let slots = &shared.greeting;
                if slots.fetch_add(1, Ordering::SeqCst) >= shared.limits.max_conns {
                    slots.fetch_sub(1, Ordering::SeqCst);
                    refuse_over_cap(socket, &shared);
                    continue;
                }
                let worker = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("pprl-net-greet".into())
                    .spawn(move || {
                        greet(socket, &worker);
                        worker.greeting.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.greeting.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if last_reap.elapsed() >= REAP_INTERVAL {
                    last_reap = Instant::now();
                    reap_idle(&shared);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Typed refusal for a connection over the supervision cap: best-effort
/// `Busy` frame, then close. Keeps floods from parking greeter threads
/// while honest dialers absorb the pushback in their reconnect loop.
fn refuse_over_cap(socket: TcpStream, shared: &MuxShared) {
    let mut stats = NetStats::default();
    stats.refused += 1;
    if let Ok(mut stream) = FramedStream::new(socket, Some(REFUSAL_WRITE_TIMEOUT)) {
        let busy = Busy {
            retry_after_ms: REFUSAL_RETRY.as_millis() as u64,
        };
        let _ = stream.send(K_BUSY, &busy.encode(), &mut stats);
    }
    net_trace!("mux refuse: connection cap {} reached", shared.limits.max_conns);
    if let Ok(mut total) = shared.stats.lock() {
        total.merge(&stats);
    }
}

/// Discards parked streams nobody claimed within the idle timeout, so a
/// daemon's mailboxes cannot accumulate sockets from dialers that gave up.
fn reap_idle(shared: &MuxShared) {
    let Some(idle) = shared.limits.idle_timeout else {
        return;
    };
    let mut reaped = 0u64;
    if let Ok(mut boxes) = shared.mailboxes.lock() {
        for queue in boxes.values_mut() {
            let before = queue.len();
            queue.retain(|(_, _, parked_at)| parked_at.elapsed() < idle);
            reaped += (before - queue.len()) as u64;
        }
        boxes.retain(|_, queue| !queue.is_empty());
    }
    if reaped > 0 {
        net_trace!("mux reaped {reaped} idle parked stream(s)");
        if let Ok(mut total) = shared.stats.lock() {
            total.reaped += reaped;
        }
    }
}

/// One connection's handshake, on its own thread and deadline: read the
/// hello, validate it against the handshake phase of the protocol state
/// machine, consult the admission gate, then park / push back / drop.
fn greet(socket: TcpStream, shared: &MuxShared) {
    // Read the dialer's hello with the handshake's dedicated timeout,
    // then hand the stream over at the session's own timeout.
    let hello = FramedStream::new(socket, Some(shared.limits.handshake_timeout))
        .and_then(|mut stream| {
            let mut stats = NetStats::default();
            let outcome = stream.recv(&mut stats).and_then(|(kind, payload)| {
                ProtocolState::accepting().admit(kind, payload.len())?;
                if kind != K_HELLO {
                    return Err(NetError::Handshake(format!(
                        "first frame was kind {kind}, expected hello"
                    )));
                }
                Ok(payload)
            });
            if matches!(outcome, Err(NetError::ProtocolViolation(_))) {
                stats.violations += 1;
            }
            if let Ok(mut total) = shared.stats.lock() {
                total.merge(&stats);
            }
            let payload = outcome?;
            stream.set_read_timeout(shared.stream_timeout)?;
            Ok((stream, Hello::decode(&payload)?))
        });
    // A connection that never identified itself is simply dropped;
    // legitimate peers re-dial and try again.
    let Ok((stream, hello)) = hello else { return };
    let identity = shared.identity.lock().ok().and_then(|id| *id);
    if let Some((role, backend)) = identity {
        if hello.backend != backend {
            // Typed refusal: reply with our own identity (echoing the
            // dialer's fingerprint so the *backend* check is what fires
            // on its side) and drop the connection. The dialer's
            // `verify` turns this into `NetError::BackendMismatch`,
            // which its reconnect loop treats as fatal.
            net_trace!(
                "mux refuse {} for {:016x}: peer backend {} != ours {}",
                hello.role, hello.fingerprint, hello.backend, backend
            );
            let mut stream = stream;
            let mut stats = NetStats::default();
            stats.refused += 1;
            let _ = stream.send(
                K_HELLO,
                &Hello::new(role, backend, hello.fingerprint).encode(),
                &mut stats,
            );
            if let Ok(mut total) = shared.stats.lock() {
                total.merge(&stats);
            }
            return;
        }
    }
    let verdict = match &shared.gate {
        Some(gate) => gate(&hello),
        None => Admission::Accept,
    };
    match verdict {
        Admission::Accept => {
            net_trace!(
                "mux park {} for {:016x} (wm={} key={})",
                hello.role, hello.fingerprint, hello.watermark, hello.have_key
            );
            if let Ok(mut boxes) = shared.mailboxes.lock() {
                // A dialer keeps exactly one connection in flight per
                // (job, role): a fresh dial means any parked stream in
                // the same mailbox was already abandoned at the dialer's
                // own timeout. Replace instead of queueing — otherwise a
                // session that sat behind the admission gate for a while
                // hands its worker a backlog of dead sockets, and the
                // worker burns a full handshake timeout on each one
                // while live dials pile up behind them. Also bounds
                // parked memory to one stream per mailbox.
                let slot = boxes
                    .entry((hello.fingerprint, hello.role))
                    .or_default();
                slot.clear();
                slot.push((stream, hello, Instant::now()));
            }
            shared.arrived.notify_all();
        }
        Admission::Busy { retry_after } => {
            net_trace!(
                "mux busy {} for {:016x} ({retry_after:?})",
                hello.role, hello.fingerprint
            );
            let mut stream = stream;
            let busy = Busy {
                retry_after_ms: retry_after.as_millis() as u64,
            };
            let mut stats = NetStats::default();
            stats.busy += 1;
            // Best-effort: a dialer that misses the frame falls back to
            // its own backoff.
            let _ = stream.send(K_BUSY, &busy.encode(), &mut stats);
            if let Ok(mut total) = shared.stats.lock() {
                total.merge(&stats);
            }
        }
        Admission::Refuse => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::K_DATA;
    use std::net::TcpStream;

    fn dial_with_hello(addr: SocketAddr, hello: Hello) -> FramedStream {
        let socket = TcpStream::connect(addr).unwrap();
        let mut stream = FramedStream::new(socket, Some(Duration::from_secs(5))).unwrap();
        let mut stats = NetStats::default();
        stream.send(K_HELLO, &hello.encode(), &mut stats).unwrap();
        stream
    }

    #[test]
    fn routes_by_fingerprint_and_role() {
        let mux = SessionMux::bind("127.0.0.1:0", Some(Duration::from_secs(5))).unwrap();
        let addr = mux.local_addr();
        let mut a = dial_with_hello(addr, Hello::new(Role::Alice, Backend::Paillier, 10));
        let mut b = dial_with_hello(addr, Hello::new(Role::Bob, Backend::Paillier, 10));
        // Ask for Bob first even though Alice dialed first.
        let (_, hb) = mux
            .wait_conn(10, Role::Bob, Duration::from_secs(5))
            .unwrap();
        assert_eq!(hb.role, Role::Bob);
        let (_, ha) = mux
            .wait_conn(10, Role::Alice, Duration::from_secs(5))
            .unwrap();
        assert_eq!(ha.role, Role::Alice);
        let mut stats = NetStats::default();
        a.send(K_DATA, &[1], &mut stats).unwrap();
        b.send(K_DATA, &[2], &mut stats).unwrap();
    }

    #[test]
    fn redial_replaces_parked_stream() {
        let mux = SessionMux::bind("127.0.0.1:0", Some(Duration::from_secs(5))).unwrap();
        let addr = mux.local_addr();
        // The dialer gives up on its first attempt (no reply in time) and
        // redials; the mailbox must hold only the fresh stream, not a
        // growing backlog of abandoned ones.
        let _stale = dial_with_hello(addr, Hello::new(Role::Alice, Backend::Paillier, 7));
        let mut fresh = dial_with_hello(addr, Hello::new(Role::Alice, Backend::Paillier, 7));
        let mut stats = NetStats::default();
        fresh.send(K_DATA, b"fresh", &mut stats).unwrap();
        // Let the accept loop route both dials before claiming.
        std::thread::sleep(Duration::from_millis(300));
        let (mut stream, hello) = mux.wait_conn(7, Role::Alice, Duration::from_secs(5)).unwrap();
        assert_eq!(hello.role, Role::Alice);
        let (kind, payload) = stream.recv(&mut stats).unwrap();
        assert_eq!(kind, K_DATA);
        assert_eq!(payload, b"fresh");
        // And nothing else is parked: a second claim times out.
        assert!(mux
            .wait_conn(7, Role::Alice, Duration::from_millis(50))
            .is_err());
    }

    #[test]
    fn concurrent_sessions_resolve_deterministically() {
        let mux = std::sync::Arc::new(
            SessionMux::bind("127.0.0.1:0", Some(Duration::from_secs(5))).unwrap(),
        );
        let addr = mux.local_addr();
        let fingerprints: Vec<u64> = (100..108).collect();
        // Dial all sessions before any worker claims one.
        let _dialers: Vec<FramedStream> = fingerprints
            .iter()
            .map(|&fp| dial_with_hello(addr, Hello::new(Role::Alice, Backend::Paillier, fp)))
            .collect();
        // Workers on pprl-runtime threads each wait for their own session.
        let got = pprl_runtime::par_map(&fingerprints, 4, |_, &fp| {
            let (_, hello) = mux
                .wait_conn(fp, Role::Alice, Duration::from_secs(5))
                .unwrap();
            hello.fingerprint
        });
        assert_eq!(got, fingerprints);
    }

    #[test]
    fn gated_busy_is_absorbed_by_the_dialers_reconnect_loop() {
        use crate::peer::{PeerChannel, ReconnectPolicy};
        use std::sync::atomic::{AtomicUsize, Ordering};

        let calls = Arc::new(AtomicUsize::new(0));
        let gate_calls = Arc::clone(&calls);
        let gate: AdmissionGate = Arc::new(move |_h: &Hello| {
            if gate_calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Admission::Busy {
                    retry_after: Duration::from_millis(20),
                }
            } else {
                Admission::Accept
            }
        });
        let timeout = Some(Duration::from_millis(500));
        let mux = Arc::new(SessionMux::bind_gated("127.0.0.1:0", timeout, Some(gate)).unwrap());
        let addr = mux.local_addr();
        let policy = ReconnectPolicy {
            deadline: Duration::from_secs(10),
            ..ReconnectPolicy::default()
        };
        let mux2 = Arc::clone(&mux);
        let acceptor = std::thread::spawn(move || {
            PeerChannel::accept(mux2, Hello::new(Role::Bob, Backend::Paillier, 5), Role::Alice, timeout, policy)
                .unwrap()
        });
        let dialer = PeerChannel::connect(
            addr,
            Hello::new(Role::Alice, Backend::Paillier, 5),
            Role::Bob,
            timeout,
            policy,
        )
        .unwrap();
        acceptor.join().unwrap();
        assert_eq!(dialer.stats.busy, 2, "both pushbacks were honored");
        assert!(dialer.stats.backoff_ms >= 40, "busy pauses were slept");
        assert!(mux.stats().busy >= 2, "the gate counted its pushbacks");
    }

    #[test]
    fn gated_refusal_surfaces_as_peer_gone() {
        use crate::peer::{PeerChannel, ReconnectPolicy};

        let gate: AdmissionGate = Arc::new(|_h: &Hello| Admission::Refuse);
        let timeout = Some(Duration::from_millis(100));
        let mux = SessionMux::bind_gated("127.0.0.1:0", timeout, Some(gate)).unwrap();
        let policy = ReconnectPolicy {
            deadline: Duration::from_millis(400),
            ..ReconnectPolicy::default()
        };
        let err = match PeerChannel::connect(
            mux.local_addr(),
            Hello::new(Role::Alice, Backend::Paillier, 9),
            Role::Bob,
            timeout,
            policy,
        ) {
            Err(e) => e,
            Ok(_) => panic!("a refused dialer connected anyway"),
        };
        assert!(matches!(err, NetError::PeerGone(_)));
    }

    #[test]
    fn slowloris_dialers_do_not_stall_honest_admission() {
        // Regression for the serial accept loop: four connections that
        // never send their hello used to pin the accept thread for a full
        // handshake timeout *each*, so an honest dialer behind them waited
        // 20+ seconds. With per-connection greeters the honest hello must
        // clear within its own handshake deadline, not the sum of
        // everyone else's.
        let limits = MuxLimits {
            handshake_timeout: Duration::from_secs(2),
            ..MuxLimits::default()
        };
        let mux = SessionMux::bind_supervised(
            "127.0.0.1:0",
            Some(Duration::from_secs(5)),
            None,
            limits,
        )
        .unwrap();
        let addr = mux.local_addr();
        let _silent: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let started = Instant::now();
        let _honest = dial_with_hello(addr, Hello::new(Role::Alice, Backend::Paillier, 42));
        let (_, hello) = mux
            .wait_conn(42, Role::Alice, Duration::from_secs(2))
            .unwrap();
        assert_eq!(hello.fingerprint, 42);
        assert!(
            started.elapsed() < limits.handshake_timeout,
            "honest admission took {:?}, longer than one handshake deadline",
            started.elapsed()
        );
    }

    #[test]
    fn connections_over_the_cap_get_a_typed_refusal() {
        use crate::frame::K_BUSY;

        let limits = MuxLimits {
            handshake_timeout: Duration::from_secs(5),
            max_conns: 2,
            ..MuxLimits::default()
        };
        let mux = SessionMux::bind_supervised(
            "127.0.0.1:0",
            Some(Duration::from_secs(5)),
            None,
            limits,
        )
        .unwrap();
        let addr = mux.local_addr();
        // Two silent connections occupy both greeter slots for the whole
        // handshake timeout.
        let _hogs: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
        std::thread::sleep(Duration::from_millis(200));
        // The third connection is refused with a typed Busy frame.
        let socket = TcpStream::connect(addr).unwrap();
        let mut stream = FramedStream::new(socket, Some(Duration::from_secs(2))).unwrap();
        let mut stats = NetStats::default();
        let (kind, payload) = stream.recv(&mut stats).unwrap();
        assert_eq!(kind, K_BUSY);
        let busy = Busy::decode(&payload).unwrap();
        assert!(busy.retry_after_ms > 0);
        assert!(mux.stats().refused >= 1, "the refusal was counted");
    }

    #[test]
    fn idle_parked_streams_are_reaped() {
        let limits = MuxLimits {
            idle_timeout: Some(Duration::from_millis(100)),
            ..MuxLimits::default()
        };
        let mux = SessionMux::bind_supervised(
            "127.0.0.1:0",
            Some(Duration::from_secs(5)),
            None,
            limits,
        )
        .unwrap();
        let addr = mux.local_addr();
        let _stream = dial_with_hello(addr, Hello::new(Role::Bob, Backend::Paillier, 77));
        // Nobody claims it; the reaper must discard it after the idle
        // timeout (sweeps run every 250 ms).
        std::thread::sleep(Duration::from_millis(700));
        assert!(mux
            .wait_conn(77, Role::Bob, Duration::from_millis(50))
            .is_err());
        assert!(mux.stats().reaped >= 1, "the reap was counted");
    }

    #[test]
    fn garbage_first_frame_counts_a_violation_and_drops_only_that_connection() {
        use std::io::Write;

        let mux = SessionMux::bind("127.0.0.1:0", Some(Duration::from_secs(5))).unwrap();
        let addr = mux.local_addr();
        // A data frame before any hello: framing-valid, phase-invalid.
        let mut hostile = TcpStream::connect(addr).unwrap();
        hostile
            .write_all(&crate::frame::encode_frame(K_DATA, &[0u8; 64]))
            .unwrap();
        // An honest dialer right behind it is unaffected.
        let _honest = dial_with_hello(addr, Hello::new(Role::Alice, Backend::Paillier, 11));
        let (_, hello) = mux
            .wait_conn(11, Role::Alice, Duration::from_secs(2))
            .unwrap();
        assert_eq!(hello.fingerprint, 11);
        // The greeter recorded the violation before closing the socket.
        let deadline = Instant::now() + Duration::from_secs(2);
        while mux.stats().violations == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(mux.stats().violations >= 1);
    }

    #[test]
    fn wait_conn_times_out_when_nobody_dials() {
        let mux = SessionMux::bind("127.0.0.1:0", Some(Duration::from_secs(1))).unwrap();
        let err = mux
            .wait_conn(1, Role::Bob, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, NetError::PeerGone(_)));
    }
}
