//! A reliable link to one peer: PR 1 `Envelope` ack/seq semantics over a
//! socket, with reconnect-with-resume.
//!
//! ## Reliability model
//!
//! Data messages travel as `Envelope` frames and are acknowledged exactly
//! as the in-process [`ReliableLink`] acknowledges them; what changes over
//! real sockets is *who* holds the state. Each [`PeerChannel`] is one
//! party's half of a link: the sender half retransmits an unacked envelope
//! on timeout or reconnection; the receiver half deduplicates by data
//! `pair_id` (monotone per link, so it survives process restarts, unlike
//! per-connection `seq`) and re-acks duplicates without reprocessing.
//!
//! ## Cost accounting
//!
//! The protocol [`CostLedger`] must stay byte-identical to the in-process
//! run, so the channel itself never touches it except through
//! [`ack_on_ledger`](PeerChannel::ack_on_ledger) — the receiver records
//! each *first* ack, exactly like `ReliableLink` does. Retransmissions,
//! duplicate re-acks, and reconnects are deployment noise and live in
//! [`NetStats`] instead.
//!
//! ## Crash–resume
//!
//! Every connection (and reconnection) opens with a [`Hello`] carrying the
//! announcer's durable watermark. A sender whose peer reconnects with
//! `watermark >= pair_id` treats the in-flight pair as delivered (the ack
//! was lost, the hello substitutes); a receiver that restarts below the
//! sender's progress simply receives retransmissions of everything past
//! its own watermark. A peer that stays gone past the reconnect deadline
//! surfaces as [`NetError::PeerGone`], which the executor degrades like a
//! retry-exhausted pair — the run continues.
//!
//! [`ReliableLink`]: pprl_crypto::protocol::ReliableLink
//! [`CostLedger`]: pprl_crypto::CostLedger

use crate::frame::{K_BUSY, K_DATA, K_GOODBYE, K_HELLO, K_LEDGER};
use crate::hello::{Busy, Hello, Role};
use crate::mux::SessionMux;
use crate::state::ProtocolState;
use crate::trace::net_trace;
use crate::stream::FramedStream;
use crate::{NetError, NetStats};
use pprl_crypto::protocol::transport::{Envelope, FrameKind, ENVELOPE_OVERHEAD};
use pprl_crypto::protocol::RetryPolicy;
use pprl_crypto::CostLedger;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Consecutive unacknowledged retransmit windows tolerated on one live
/// connection before the sender forces a reconnect. A peer that is
/// reachable but silent may be desynchronized on a frame it can never
/// complete (a corrupted length field eats every retransmission as
/// payload); only a fresh connection — which resets both decoders —
/// heals that, and the receiver alone cannot always tell.
const ACK_STALL_WINDOWS: u32 = 3;

/// Reconnection behavior when a connection drops mid-session.
#[derive(Clone, Copy, Debug)]
pub struct ReconnectPolicy {
    /// Backoff between dial attempts: the protocol layer's
    /// [`RetryPolicy`] exponential-with-jitter schedule (`max_retries` is
    /// ignored here — `deadline` bounds the loop instead). A `Busy`
    /// pushback overrides the schedule with the listener's own hint.
    pub retry: RetryPolicy,
    /// Total time one operation may spend waiting for the peer (including
    /// reconnects and retransmissions) before reporting `PeerGone`.
    pub deadline: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            retry: RetryPolicy::default(),
            deadline: Duration::from_secs(30),
        }
    }
}

/// A data envelope accepted from the peer, not yet acknowledged.
#[derive(Debug)]
pub struct IncomingData {
    /// The exchange this belongs to (`0` = the key broadcast).
    pub pair_id: u64,
    /// Connection-local sequence number (echoed in the ack).
    pub seq: u64,
    /// The protocol message.
    pub payload: Vec<u8>,
}

/// Which end establishes the TCP connection.
enum Endpoint {
    /// Re-dial this address on every (re)connect.
    Dial(SocketAddr),
    /// Pull (re)connections for our key from a shared listener.
    Accept(Arc<SessionMux>),
}

/// One party's half of a reliable link to one peer.
pub struct PeerChannel {
    endpoint: Endpoint,
    /// Our announcement; `watermark`/`have_key` advance as data commits.
    local: Hello,
    expect_role: Role,
    conn: Option<FramedStream>,
    /// The peer's latest announcement (refreshed on every reconnect).
    peer_hello: Option<Hello>,
    next_seq: u64,
    /// Data envelopes that arrived while waiting for something else.
    pending: Vec<Envelope>,
    /// End-of-session summary received early.
    pending_ledger: Option<Vec<u8>>,
    timeout: Option<Duration>,
    policy: ReconnectPolicy,
    /// Consecutive failed (re)connect attempts, for the backoff schedule;
    /// reset by every successful handshake.
    attempt: u32,
    /// Jitter state for the rand-free backoff (seeded per channel so
    /// parallel sessions don't thunder in phase).
    jitter: u64,
    /// Drain mode: this side stopped consuming data (deadline expiry) but
    /// keeps acking fresh envelopes off-ledger during the ledger wait, so
    /// the peer can finish its walk instead of stalling into `PeerGone`.
    drain: bool,
    /// Frame-sequence validator for the current connection; reset by
    /// every successful (re-)handshake. A frame it rejects costs the
    /// connection (reconnect-with-resume recovers), never the session.
    state: ProtocolState,
    /// Wire accounting (see crate docs: never part of the cost ledger).
    pub stats: NetStats,
}

impl PeerChannel {
    /// Dials `addr`, sends our `Hello`, and awaits the peer's reply.
    pub fn connect(
        addr: SocketAddr,
        local: Hello,
        expect_role: Role,
        timeout: Option<Duration>,
        policy: ReconnectPolicy,
    ) -> Result<Self, NetError> {
        let mut channel = PeerChannel {
            endpoint: Endpoint::Dial(addr),
            local,
            expect_role,
            conn: None,
            peer_hello: None,
            next_seq: 0,
            pending: Vec::new(),
            pending_ledger: None,
            timeout,
            policy,
            attempt: 0,
            jitter: local.fingerprint ^ ((local.role as u64) << 8) ^ expect_role as u64,
            drain: false,
            state: ProtocolState::dialing(),
            stats: NetStats::default(),
        };
        // The loop, not a single attempt: the listener may answer `Busy`
        // (admission cap) or not be up yet; both resolve under the policy
        // deadline.
        channel.regain(Instant::now())?;
        Ok(channel)
    }

    /// Waits on the mux for the peer to dial us, then replies with our
    /// `Hello`.
    pub fn accept(
        mux: Arc<SessionMux>,
        local: Hello,
        expect_role: Role,
        timeout: Option<Duration>,
        policy: ReconnectPolicy,
    ) -> Result<Self, NetError> {
        let mut channel = Self::accept_lazy(mux, local, expect_role, timeout, policy);
        channel.regain(Instant::now())?;
        Ok(channel)
    }

    /// Like [`accept`](Self::accept), but defers claiming a connection
    /// until the first operation needs one.
    ///
    /// A session that owns channels to several peers must not block on any
    /// one of them at setup: mid-run peers only re-dial when their own next
    /// operation touches this link, so an eager accept here can deadlock
    /// against a peer that is itself blocked on a third party (the resumed
    /// daemon querier waiting for Alice while Alice waits for Bob and Bob
    /// waits for the querier). Each operation already reconnects on demand
    /// under its own deadline, which claims the peer's dial whenever it
    /// arrives.
    pub fn accept_lazy(
        mux: Arc<SessionMux>,
        local: Hello,
        expect_role: Role,
        timeout: Option<Duration>,
        policy: ReconnectPolicy,
    ) -> Self {
        PeerChannel {
            endpoint: Endpoint::Accept(mux),
            local,
            expect_role,
            conn: None,
            peer_hello: None,
            next_seq: 0,
            pending: Vec::new(),
            pending_ledger: None,
            timeout,
            policy,
            attempt: 0,
            jitter: local.fingerprint ^ ((local.role as u64) << 8) ^ expect_role as u64,
            drain: false,
            state: ProtocolState::accepting(),
            stats: NetStats::default(),
        }
    }

    /// The peer's most recent announcement.
    pub fn peer_hello(&self) -> Option<Hello> {
        self.peer_hello
    }

    /// Highest data pair this side has committed (and will re-ack
    /// off-ledger if it arrives again).
    pub fn watermark(&self) -> u64 {
        self.local.watermark
    }

    /// Establishes (or re-establishes) the connection and exchanges
    /// hellos. One attempt; callers loop under the policy deadline.
    fn establish(&mut self, _start: Instant) -> Result<(), NetError> {
        let reconnecting = self.peer_hello.is_some();
        match &self.endpoint {
            Endpoint::Dial(addr) => {
                net_trace!("{} dial {} ({addr})", self.local.role, self.expect_role);
                let socket = TcpStream::connect_timeout(
                    addr,
                    self.timeout.unwrap_or(Duration::from_secs(10)),
                )?;
                let mut stream = FramedStream::new(socket, self.timeout)?;
                stream.send(K_HELLO, &self.local.encode(), &mut self.stats)?;
                let (kind, payload) = stream.recv(&mut self.stats)?;
                // The reply must be a handshake frame of its exact wire
                // width; anything else is a violation before we even look
                // at the kind.
                if let Err(e) = ProtocolState::dialing().admit(kind, payload.len()) {
                    self.stats.violations += 1;
                    return Err(e);
                }
                if kind == K_BUSY {
                    let busy = Busy::decode(&payload)?;
                    net_trace!("{} dial {}: busy {}ms", self.local.role, self.expect_role, busy.retry_after_ms);
                    return Err(NetError::Busy(busy.retry_after_ms));
                }
                if kind != K_HELLO {
                    return Err(NetError::Handshake(format!(
                        "expected hello reply, got frame kind {kind}"
                    )));
                }
                let hello = Hello::decode(&payload)?;
                hello.verify(self.expect_role, self.local.fingerprint)?;
                net_trace!(
                    "{} dial {}: handshake done (peer wm={} key={})",
                    self.local.role, self.expect_role, hello.watermark, hello.have_key
                );
                self.conn = Some(stream);
                self.peer_hello = Some(hello);
            }
            Endpoint::Accept(mux) => {
                net_trace!("{} accept-wait {}", self.local.role, self.expect_role);
                let (mut stream, hello) = mux.wait_conn(
                    self.local.fingerprint,
                    self.expect_role,
                    self.policy.deadline,
                )?;
                hello.verify(self.expect_role, self.local.fingerprint)?;
                stream.send(K_HELLO, &self.local.encode(), &mut self.stats)?;
                net_trace!(
                    "{} accept {}: claimed + replied (peer wm={} key={})",
                    self.local.role, self.expect_role, hello.watermark, hello.have_key
                );
                self.conn = Some(stream);
                self.peer_hello = Some(hello);
            }
        }
        if reconnecting {
            self.stats.reconnects += 1;
        }
        // Fresh connection, fresh state machine: the handshake is behind
        // us, and whether the key phase applies depends on what this side
        // has already committed.
        let mut state = match &self.endpoint {
            Endpoint::Dial(_) => ProtocolState::dialing(),
            Endpoint::Accept(_) => ProtocolState::accepting(),
        };
        state.complete_handshake(self.local.have_key);
        self.state = state;
        self.attempt = 0;
        Ok(())
    }

    /// Runs one received frame header through the connection's state
    /// machine. `false` means the frame was rejected: the violation is
    /// counted and the connection dropped — the caller's reconnect loop
    /// takes it from there, the session never aborts.
    fn admit_frame(&mut self, kind: u8, payload_len: usize) -> bool {
        match self.state.admit(kind, payload_len) {
            Ok(()) => true,
            Err(e) => {
                net_trace!(
                    "{} <- {}: {e}; dropping the connection",
                    self.local.role, self.expect_role
                );
                self.stats.violations += 1;
                self.conn = None;
                false
            }
        }
    }

    /// Drops a dead connection and blocks until a new one is handshaken,
    /// bounded by the operation deadline that started at `start`. Failed
    /// attempts back off on the policy's exponential-with-jitter schedule;
    /// a `Busy` pushback sleeps the listener's own hint instead. Every
    /// pause is off-ledger deployment patience, metered in
    /// [`NetStats::backoff_ms`].
    fn regain(&mut self, start: Instant) -> Result<(), NetError> {
        self.conn = None;
        loop {
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "no connection to {} within {:?}",
                    self.expect_role, self.policy.deadline
                )));
            }
            let pause_ms = match self.establish(start) {
                Ok(()) => return Ok(()),
                Err(NetError::PeerGone(why)) => return Err(NetError::PeerGone(why)),
                Err(NetError::Busy(retry_after_ms)) => {
                    self.stats.busy += 1;
                    retry_after_ms
                }
                Err(e) => {
                    net_trace!("{} regain {}: attempt failed: {e}", self.local.role, self.expect_role);
                    self.attempt = self.attempt.saturating_add(1);
                    self.policy.retry.backoff_ms_seeded(self.attempt, &mut self.jitter)
                }
            };
            let remaining = self.policy.deadline.saturating_sub(start.elapsed());
            let pause = Duration::from_millis(pause_ms).min(remaining);
            self.stats.backoff_ms += pause.as_millis() as u64;
            std::thread::sleep(pause);
        }
    }

    fn conn(&mut self, start: Instant) -> Result<&mut FramedStream, NetError> {
        if self.conn.is_none() {
            self.regain(start)?;
        }
        self.conn
            .as_mut()
            .ok_or(NetError::Protocol("connection vanished after regain".into()))
    }

    /// Sends an ack envelope without touching any ledger (duplicates and
    /// loss-recovery acks are deployment noise).
    fn ack_off_ledger(&mut self, pair_id: u64, seq: u64) {
        let frame = Envelope::ack(pair_id, seq).encode();
        let mut stats = std::mem::take(&mut self.stats);
        if let Some(stream) = self.conn.as_mut() {
            if stream.send(K_DATA, &frame, &mut stats).is_err() {
                self.conn = None;
            }
        }
        self.stats = stats;
    }

    /// True when the receiver has already committed this envelope.
    fn is_duplicate(&self, env: &Envelope) -> bool {
        if env.pair_id == 0 {
            self.local.have_key
        } else {
            env.pair_id <= self.local.watermark
        }
    }

    /// Reliably delivers one data envelope and returns once the peer has
    /// acknowledged it (or its reconnect `Hello` shows the pair already
    /// committed). Does not touch the cost ledger: data messages are
    /// recorded by the protocol function that built them, acks by the
    /// receiver.
    pub fn send_data(&mut self, pair_id: u64, payload: &[u8]) -> Result<(), NetError> {
        let start = Instant::now();
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = Envelope::data(pair_id, seq, payload.to_vec()).encode();
        let mut sent_once = false;
        let mut stalled_windows = 0u32;
        loop {
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "pair {pair_id} unacknowledged by {} after {:?}",
                    self.expect_role, self.policy.deadline
                )));
            }
            if self.conn.is_none() {
                self.regain(start)?;
                // The fresh hello may already prove delivery.
                if self.peer_committed(pair_id) {
                    net_trace!(
                        "{} send pair {pair_id} -> {}: proven by hello",
                        self.local.role, self.expect_role
                    );
                    return Ok(());
                }
            }
            let mut stats = std::mem::take(&mut self.stats);
            let sent = self
                .conn
                .as_mut()
                .map(|stream| stream.send(K_DATA, &frame, &mut stats))
                .unwrap_or(Err(NetError::Disconnected));
            self.stats = stats;
            match sent {
                Ok(()) => {
                    if sent_once {
                        self.stats.retransmits += 1;
                        net_trace!(
                            "{} send pair {pair_id} -> {}: retransmit",
                            self.local.role, self.expect_role
                        );
                    }
                    sent_once = true;
                }
                Err(_) => {
                    net_trace!(
                        "{} send pair {pair_id} -> {}: conn dropped on write",
                        self.local.role, self.expect_role
                    );
                    self.conn = None;
                    continue;
                }
            }
            // Await the ack, buffering any data frames that interleave.
            match self.await_ack(pair_id, seq, start) {
                Ok(true) => return Ok(()),
                Ok(false) => {
                    // Timeout window: retransmit — but not forever on the
                    // same connection. A live link that swallows several
                    // retransmissions without ever acking is presumed
                    // desynchronized; force both ends onto a fresh one.
                    if self.conn.is_some() {
                        stalled_windows += 1;
                        if stalled_windows >= ACK_STALL_WINDOWS {
                            net_trace!(
                                "{} send pair {pair_id} -> {}: {stalled_windows} silent \
                                 windows, forcing a reconnect",
                                self.local.role, self.expect_role
                            );
                            stalled_windows = 0;
                            self.conn = None;
                        }
                    } else {
                        stalled_windows = 0;
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// True if the peer's last hello shows `pair_id` durably completed.
    fn peer_committed(&self, pair_id: u64) -> bool {
        match self.peer_hello {
            Some(h) => {
                if pair_id == 0 {
                    h.have_key
                } else {
                    h.watermark >= pair_id
                }
            }
            None => false,
        }
    }

    /// Reads until the matching ack, a timeout (`Ok(false)`), or a dead
    /// connection (also `Ok(false)`, with the connection cleared so the
    /// caller reconnects).
    fn await_ack(&mut self, pair_id: u64, seq: u64, start: Instant) -> Result<bool, NetError> {
        loop {
            if start.elapsed() >= self.policy.deadline {
                return Ok(false);
            }
            let mut stats = std::mem::take(&mut self.stats);
            let received = self
                .conn
                .as_mut()
                .map(|stream| stream.recv(&mut stats))
                .unwrap_or(Err(NetError::Disconnected));
            self.stats = stats;
            match received {
                Ok((kind, payload)) if !self.admit_frame(kind, payload.len()) => {
                    // Out-of-phase frame (mid-session hello, data after
                    // the ledger, wrong-sized fixed frame): the
                    // connection is gone, retransmit over a fresh one.
                    return Ok(false);
                }
                Ok((K_DATA, payload)) => match Envelope::decode(&payload) {
                    Ok(env) if env.kind == FrameKind::Ack => {
                        if env.pair_id == pair_id && env.seq == seq {
                            net_trace!(
                                "{} send pair {pair_id} -> {}: acked",
                                self.local.role, self.expect_role
                            );
                            return Ok(true);
                        }
                        // Stale ack from before a reconnect: ignore.
                    }
                    Ok(env) => self.pending.push(env),
                    Err(_) => {
                        // Envelope corruption inside a checksummed frame:
                        // the stream is incoherent, force a reconnect.
                        self.conn = None;
                        return Ok(false);
                    }
                },
                Ok((K_LEDGER, payload)) => self.pending_ledger = Some(payload),
                Ok((_, _)) => {} // goodbye: admitted, nothing to do
                Err(NetError::Timeout) => {
                    net_trace!(
                        "{} send pair {pair_id} -> {}: ack window timed out",
                        self.local.role, self.expect_role
                    );
                    return Ok(false);
                }
                Err(e) => {
                    net_trace!(
                        "{} send pair {pair_id} -> {}: conn died awaiting ack: {e}",
                        self.local.role, self.expect_role
                    );
                    self.conn = None;
                    return Ok(false);
                }
            }
        }
    }

    /// Blocks until the next *fresh* data envelope (duplicates are re-acked
    /// off-ledger and skipped), bounded by the reconnect deadline.
    pub fn recv_data(&mut self) -> Result<IncomingData, NetError> {
        let start = Instant::now();
        loop {
            if let Some(env) = self.pending.pop() {
                if let Some(incoming) = self.screen(env) {
                    return Ok(incoming);
                }
                continue;
            }
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "no data from {} within {:?}",
                    self.expect_role, self.policy.deadline
                )));
            }
            self.conn(start)?;
            let mut stats = std::mem::take(&mut self.stats);
            let received = self
                .conn
                .as_mut()
                .map(|stream| stream.recv(&mut stats))
                .unwrap_or(Err(NetError::Disconnected));
            self.stats = stats;
            match received {
                Ok((kind, payload)) if !self.admit_frame(kind, payload.len()) => {}
                Ok((K_DATA, payload)) => match Envelope::decode(&payload) {
                    Ok(env) if env.kind == FrameKind::Data => {
                        if let Some(incoming) = self.screen(env) {
                            net_trace!(
                                "{} recv pair {} from {}",
                                self.local.role, incoming.pair_id, self.expect_role
                            );
                            return Ok(incoming);
                        }
                    }
                    Ok(_) => {} // stray ack: stale, drop
                    Err(_) => self.conn = None,
                },
                Ok((K_LEDGER, payload)) => self.pending_ledger = Some(payload),
                Ok((_, _)) => {} // goodbye: admitted, nothing to do
                Err(NetError::Timeout) => {}
                Err(_) => self.conn = None,
            }
        }
    }

    /// Dedup screen: fresh envelopes pass through, committed ones are
    /// re-acked off-ledger and counted as duplicates.
    fn screen(&mut self, env: Envelope) -> Option<IncomingData> {
        if env.kind != FrameKind::Data {
            return None;
        }
        if self.is_duplicate(&env) {
            self.stats.duplicates += 1;
            self.ack_off_ledger(env.pair_id, env.seq);
            return None;
        }
        Some(IncomingData {
            pair_id: env.pair_id,
            seq: env.seq,
            payload: env.payload,
        })
    }

    /// Acknowledges an accepted envelope *on the ledger* — the one ack per
    /// data message the in-process `ReliableLink` also records — and
    /// commits the receiver's dedup state. Callers journal their durable
    /// state *before* calling this: ack loss is recovered by the sender
    /// retransmitting into the dedup screen.
    pub fn ack_on_ledger(&mut self, incoming: &IncomingData, ledger: &mut CostLedger) {
        ledger.record_message(ENVELOPE_OVERHEAD);
        self.commit_ack(incoming);
    }

    /// Commits the dedup state for an accepted envelope and sends its ack,
    /// with the ack's ledger cost already recorded by the caller. This is
    /// the two-phase variant of [`ack_on_ledger`](Self::ack_on_ledger): a
    /// party that must journal *between* recording the cost and releasing
    /// the sender (so a crash on either side of the journal write reconciles
    /// to exactly one recorded ack) records first, journals, then commits.
    pub fn commit_ack(&mut self, incoming: &IncomingData) {
        if incoming.pair_id == 0 {
            self.local.have_key = true;
            self.state.note_key();
        } else {
            self.local.watermark = incoming.pair_id;
        }
        self.ack_off_ledger(incoming.pair_id, incoming.seq);
    }

    /// Switches this receiver into drain mode: it no longer consumes data
    /// envelopes (the session's deadline expired and remaining pairs were
    /// abandoned locally), but during [`recv_ledger`](Self::recv_ledger)
    /// it still acks fresh envelopes off-ledger so the oblivious peer can
    /// complete its deterministic walk and ship its cost summary instead
    /// of stalling into `PeerGone`. Drained pairs are never committed to
    /// the dedup watermark — they were abandoned, not processed.
    pub fn drain_stragglers(&mut self) {
        self.drain = true;
    }

    /// Sends the end-of-session cost summary followed by a goodbye.
    pub fn send_ledger(&mut self, ledger: &CostLedger) -> Result<(), NetError> {
        let start = Instant::now();
        let payload = ledger.encode();
        loop {
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "could not deliver the cost summary to {}",
                    self.expect_role
                )));
            }
            self.conn(start)?;
            let mut stats = std::mem::take(&mut self.stats);
            let sent = self
                .conn
                .as_mut()
                .map(|stream| {
                    stream.send(K_LEDGER, &payload, &mut stats)?;
                    stream.send(K_GOODBYE, &[], &mut stats)
                })
                .unwrap_or(Err(NetError::Disconnected));
            self.stats = stats;
            match sent {
                Ok(()) => return Ok(()),
                Err(_) => self.conn = None,
            }
        }
    }

    /// Blocks for the peer's end-of-session cost summary.
    ///
    /// The deadline here is a *liveness* bound — it restarts whenever a
    /// frame arrives — because a draining peer may legitimately stream a
    /// long tail of pairs (see [`drain_stragglers`](Self::drain_stragglers))
    /// before its summary; only silence counts against it.
    pub fn recv_ledger(&mut self) -> Result<CostLedger, NetError> {
        let mut start = Instant::now();
        loop {
            if let Some(payload) = self.pending_ledger.take() {
                return CostLedger::decode(&payload).ok_or_else(|| {
                    NetError::Protocol(format!(
                        "cost summary has {} bytes, expected {}",
                        payload.len(),
                        CostLedger::WIRE_LEN
                    ))
                });
            }
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "no cost summary from {} within {:?}",
                    self.expect_role, self.policy.deadline
                )));
            }
            self.conn(start)?;
            let mut stats = std::mem::take(&mut self.stats);
            let received = self
                .conn
                .as_mut()
                .map(|stream| stream.recv(&mut stats))
                .unwrap_or(Err(NetError::Disconnected));
            self.stats = stats;
            match received {
                Ok((kind, payload)) if !self.admit_frame(kind, payload.len()) => {}
                Ok((K_LEDGER, payload)) => self.pending_ledger = Some(payload),
                Ok((K_DATA, payload)) => {
                    start = Instant::now();
                    if let Ok(env) = Envelope::decode(&payload) {
                        if env.kind != FrameKind::Data {
                            continue;
                        }
                        if self.is_duplicate(&env) {
                            // A late retransmission: keep the dedup
                            // contract alive.
                            self.stats.duplicates += 1;
                            self.ack_off_ledger(env.pair_id, env.seq);
                        } else if self.drain {
                            // Deadline drain: ack-and-discard so the
                            // oblivious sender keeps walking. Off-ledger
                            // and uncommitted — the pair was abandoned.
                            self.stats.drained += 1;
                            self.ack_off_ledger(env.pair_id, env.seq);
                        }
                    }
                }
                Ok((_, _)) => start = Instant::now(),
                Err(NetError::Timeout) => {}
                Err(_) => self.conn = None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(
        timeout_ms: u64,
        deadline_ms: u64,
    ) -> (PeerChannel, PeerChannel, Arc<SessionMux>) {
        let timeout = Some(Duration::from_millis(timeout_ms));
        let policy = ReconnectPolicy {
            retry: RetryPolicy {
                base_delay_ms: 5,
                max_delay_ms: 50,
                ..RetryPolicy::default()
            },
            deadline: Duration::from_millis(deadline_ms),
        };
        let mux = Arc::new(SessionMux::bind("127.0.0.1:0", timeout).unwrap());
        let addr = mux.local_addr();
        let mux2 = Arc::clone(&mux);
        let acceptor = std::thread::spawn(move || {
            PeerChannel::accept(mux2, Hello::new(Role::Bob, 77), Role::Alice, timeout, policy)
                .unwrap()
        });
        let dialer = PeerChannel::connect(
            addr,
            Hello::new(Role::Alice, 77),
            Role::Bob,
            timeout,
            policy,
        )
        .unwrap();
        let accepted = acceptor.join().unwrap();
        (dialer, accepted, mux)
    }

    #[test]
    fn data_is_delivered_and_acked_exactly_once_on_the_ledger() {
        let (mut alice, mut bob, _mux) = link(2_000, 5_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            let incoming = bob.recv_data().unwrap();
            assert_eq!(incoming.pair_id, 1);
            assert_eq!(incoming.payload, vec![5; 64]);
            bob.ack_on_ledger(&incoming, &mut ledger);
            assert_eq!(ledger.messages, 1);
            assert_eq!(ledger.bytes, ENVELOPE_OVERHEAD as u64);
            (bob, ledger)
        });
        alice.send_data(1, &[5; 64]).unwrap();
        let (bob, _) = receiver.join().unwrap();
        assert_eq!(bob.watermark(), 1);
        assert_eq!(alice.stats.retransmits, 0);
    }

    #[test]
    fn duplicate_delivery_is_reacked_off_ledger() {
        let (mut alice, mut bob, _mux) = link(200, 3_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            let incoming = bob.recv_data().unwrap();
            bob.ack_on_ledger(&incoming, &mut ledger);
            // Second, duplicate transmission of pair 1 plus a fresh pair 2:
            // only pair 2 surfaces, the dup is re-acked silently.
            let second = bob.recv_data().unwrap();
            assert_eq!(second.pair_id, 2);
            bob.ack_on_ledger(&second, &mut ledger);
            (bob, ledger)
        });
        alice.send_data(1, &[1]).unwrap();
        // Force a duplicate of pair 1 on the wire by replaying the envelope.
        let dup = Envelope::data(1, 99, vec![1]).encode();
        let mut stats = NetStats::default();
        alice.conn.as_mut().unwrap().send(K_DATA, &dup, &mut stats).unwrap();
        alice.send_data(2, &[2]).unwrap();
        let (bob, ledger) = receiver.join().unwrap();
        assert_eq!(bob.stats.duplicates, 1);
        assert_eq!(ledger.messages, 2, "dup ack never hit the ledger");
    }

    #[test]
    fn sender_survives_a_receiver_restart() {
        let timeout = Some(Duration::from_millis(150));
        let policy = ReconnectPolicy {
            retry: RetryPolicy {
                base_delay_ms: 5,
                max_delay_ms: 50,
                ..RetryPolicy::default()
            },
            deadline: Duration::from_secs(10),
        };
        let mux = Arc::new(SessionMux::bind("127.0.0.1:0", timeout).unwrap());
        let addr = mux.local_addr();
        let mux2 = Arc::clone(&mux);
        let acceptor = std::thread::spawn(move || {
            let mut bob = PeerChannel::accept(
                Arc::clone(&mux2),
                Hello::new(Role::Bob, 9),
                Role::Alice,
                timeout,
                policy,
            )
            .unwrap();
            let mut ledger = CostLedger::new();
            let first = bob.recv_data().unwrap();
            bob.ack_on_ledger(&first, &mut ledger);
            // Simulate a crash after committing pair 1: drop the
            // connection and come back with the watermark in the hello.
            let watermark = bob.watermark();
            drop(bob);
            let mut resumed_hello = Hello::new(Role::Bob, 9);
            resumed_hello.watermark = watermark;
            resumed_hello.have_key = true;
            let mut bob = PeerChannel::accept(
                Arc::clone(&mux2),
                resumed_hello,
                Role::Alice,
                timeout,
                policy,
            )
            .unwrap();
            let second = bob.recv_data().unwrap();
            assert_eq!(second.pair_id, 2);
            bob.ack_on_ledger(&second, &mut ledger);
            ledger
        });
        let mut alice = PeerChannel::connect(
            addr,
            Hello::new(Role::Alice, 9),
            Role::Bob,
            timeout,
            policy,
        )
        .unwrap();
        alice.send_data(1, &[7; 32]).unwrap();
        alice.send_data(2, &[8; 32]).unwrap();
        let ledger = acceptor.join().unwrap();
        assert_eq!(ledger.messages, 2);
        assert!(alice.stats.reconnects >= 1, "the drop forced a reconnect");
    }

    #[test]
    fn out_of_phase_frames_cost_the_connection_not_the_session() {
        let (mut alice, mut bob, _mux) = link(200, 8_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            let incoming = bob.recv_data().unwrap();
            assert_eq!(incoming.pair_id, 1);
            bob.ack_on_ledger(&incoming, &mut ledger);
            bob
        });
        // Splice a handshake frame into the established stream: the
        // receiver must treat it as a protocol violation, drop only this
        // connection, and pick the pair up over the reconnect.
        let mut stats = NetStats::default();
        let rogue = Hello::new(Role::Alice, 77).encode();
        alice
            .conn
            .as_mut()
            .unwrap()
            .send(K_HELLO, &rogue, &mut stats)
            .unwrap();
        alice.send_data(1, &[9; 16]).unwrap();
        let bob = receiver.join().unwrap();
        assert!(bob.stats.violations >= 1, "the rogue hello was counted");
        assert_eq!(bob.watermark(), 1, "the pair still committed");
        assert!(
            alice.stats.reconnects >= 1,
            "delivery finished over a fresh connection"
        );
    }

    #[test]
    fn a_corrupted_length_field_cannot_stall_the_session() {
        let (mut alice, mut bob, _mux) = link(150, 10_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            let incoming = bob.recv_data().unwrap();
            assert_eq!(incoming.pair_id, 1);
            bob.ack_on_ledger(&incoming, &mut ledger);
            bob
        });
        // Write a raw header claiming a huge payload, as a bit flip inside
        // a length field would: Bob's decoder waits for bytes that never
        // amount to a frame, eating every retransmission as "payload". The
        // sender's stall escalation must force a fresh connection and
        // deliver the pair there.
        {
            use std::io::Write;
            let mut header = vec![K_DATA];
            header.extend_from_slice(&(8u32 << 20).to_le_bytes());
            alice
                .conn
                .as_mut()
                .unwrap()
                .stream_mut()
                .write_all(&header)
                .unwrap();
        }
        alice.send_data(1, &[3; 24]).unwrap();
        let bob = receiver.join().unwrap();
        assert_eq!(bob.watermark(), 1, "the pair still committed");
        assert!(
            alice.stats.reconnects >= 1,
            "delivery finished over a fresh connection (stats: {})",
            alice.stats
        );
    }

    #[test]
    fn a_peer_that_stays_gone_surfaces_as_peer_gone() {
        let (mut alice, bob, _mux) = link(50, 300);
        drop(bob);
        let err = alice.send_data(1, &[1]).unwrap_err();
        assert!(matches!(err, NetError::PeerGone(_)));
    }

    #[test]
    fn cost_summaries_cross_the_link() {
        let (mut alice, mut bob, _mux) = link(2_000, 5_000);
        let mut ledger = CostLedger::new();
        ledger.encryptions = 42;
        ledger.record_message(1000);
        let expected = ledger.clone();
        let receiver = std::thread::spawn(move || bob.recv_ledger().unwrap());
        alice.send_ledger(&ledger).unwrap();
        assert_eq!(receiver.join().unwrap(), expected);
    }
}
