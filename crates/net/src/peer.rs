//! A reliable link to one peer: PR 1 `Envelope` ack/seq semantics over a
//! socket, with reconnect-with-resume.
//!
//! ## Reliability model
//!
//! Data messages travel as `Envelope` frames and are acknowledged exactly
//! as the in-process [`ReliableLink`] acknowledges them; what changes over
//! real sockets is *who* holds the state. Each [`PeerChannel`] is one
//! party's half of a link: the sender half retransmits an unacked envelope
//! on timeout or reconnection; the receiver half deduplicates by data
//! `pair_id` (monotone per link, so it survives process restarts, unlike
//! per-connection `seq`) and re-acks duplicates without reprocessing.
//!
//! ## Cost accounting
//!
//! The protocol [`CostLedger`] must stay byte-identical to the in-process
//! run, so the channel itself never touches it except through
//! [`ack_on_ledger`](PeerChannel::ack_on_ledger) — the receiver records
//! each *first* ack, exactly like `ReliableLink` does. Retransmissions,
//! duplicate re-acks, and reconnects are deployment noise and live in
//! [`NetStats`] instead.
//!
//! ## Crash–resume
//!
//! Every connection (and reconnection) opens with a [`Hello`] carrying the
//! announcer's durable watermark. A sender whose peer reconnects with
//! `watermark >= pair_id` treats the in-flight pair as delivered (the ack
//! was lost, the hello substitutes); a receiver that restarts below the
//! sender's progress simply receives retransmissions of everything past
//! its own watermark. A peer that stays gone past the reconnect deadline
//! surfaces as [`NetError::PeerGone`], which the executor degrades like a
//! retry-exhausted pair — the run continues.
//!
//! [`ReliableLink`]: pprl_crypto::protocol::ReliableLink
//! [`CostLedger`]: pprl_crypto::CostLedger

use crate::batch::{decode_batch, encode_batch};
use crate::commit::CommitSet;
use crate::frame::{K_BUSY, K_DATA, K_DATA_BATCH, K_GOODBYE, K_HELLO, K_LEDGER};
use crate::hello::{Busy, Hello, Role};
use crate::mux::SessionMux;
use crate::state::ProtocolState;
use crate::trace::net_trace;
use crate::stream::FramedStream;
use crate::{NetError, NetStats};
use pprl_crypto::protocol::transport::{Envelope, FrameKind, ENVELOPE_OVERHEAD};
use pprl_crypto::protocol::RetryPolicy;
use pprl_crypto::CostLedger;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Consecutive unacknowledged retransmit windows tolerated on one live
/// connection before the sender forces a reconnect. A peer that is
/// reachable but silent may be desynchronized on a frame it can never
/// complete (a corrupted length field eats every retransmission as
/// payload); only a fresh connection — which resets both decoders —
/// heals that, and the receiver alone cannot always tell.
const ACK_STALL_WINDOWS: u32 = 3;

/// Byte budget of envelope payload per coalesced flush frame: a windowed
/// burst larger than this is split across several batch frames, keeping
/// each one far under [`MAX_FRAME_LEN`](crate::frame::MAX_FRAME_LEN).
const FLUSH_BUDGET: usize = 1 << 20;

/// One windowed submission: the envelope is encoded exactly once, so every
/// retransmission (and the ack match) reuses the same `seq` and bytes.
#[derive(Debug)]
struct Inflight {
    pair_id: u64,
    seq: u64,
    /// The encoded envelope (not the full wire frame).
    frame: Vec<u8>,
    /// Awaiting (re)transmission on the current connection.
    queued: bool,
    /// Transmitted at least once (so later flushes count as retransmits).
    sent_once: bool,
    /// The peer acknowledged it (directly or via a reconnect hello).
    acked: bool,
}

/// Reconnection behavior when a connection drops mid-session.
#[derive(Clone, Copy, Debug)]
pub struct ReconnectPolicy {
    /// Backoff between dial attempts: the protocol layer's
    /// [`RetryPolicy`] exponential-with-jitter schedule (`max_retries` is
    /// ignored here — `deadline` bounds the loop instead). A `Busy`
    /// pushback overrides the schedule with the listener's own hint.
    pub retry: RetryPolicy,
    /// Total time one operation may spend waiting for the peer (including
    /// reconnects and retransmissions) before reporting `PeerGone`.
    pub deadline: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            retry: RetryPolicy::default(),
            deadline: Duration::from_secs(30),
        }
    }
}

/// A data envelope accepted from the peer, not yet acknowledged.
#[derive(Debug)]
pub struct IncomingData {
    /// The exchange this belongs to (`0` = the key broadcast).
    pub pair_id: u64,
    /// Connection-local sequence number (echoed in the ack).
    pub seq: u64,
    /// The protocol message.
    pub payload: Vec<u8>,
}

/// Which end establishes the TCP connection.
enum Endpoint {
    /// Re-dial this address on every (re)connect.
    Dial(SocketAddr),
    /// Pull (re)connections for our key from a shared listener.
    Accept(Arc<SessionMux>),
}

/// One party's half of a reliable link to one peer.
pub struct PeerChannel {
    endpoint: Endpoint,
    /// Our announcement; `watermark`/`have_key` advance as data commits.
    local: Hello,
    expect_role: Role,
    conn: Option<FramedStream>,
    /// The peer's latest announcement (refreshed on every reconnect).
    peer_hello: Option<Hello>,
    next_seq: u64,
    /// Data envelopes that arrived while waiting for something else,
    /// drained oldest-first (a coalesced batch delivers several at once).
    pending: VecDeque<Envelope>,
    /// End-of-session summary received early.
    pending_ledger: Option<Vec<u8>>,
    /// What this receiver has durably committed: the low-water mark it
    /// announces in hellos plus any out-of-order commits above it.
    committed: CommitSet,
    /// Highest data pair this receiver has *surfaced* to its caller but
    /// not necessarily committed yet. A windowed peer retransmits pairs
    /// that are merely slow to commit; those must be dropped silently
    /// (no ack — the ack is the commit) instead of re-processed.
    received_high: u64,
    /// Windowed submissions in flight, oldest first (empty unless the
    /// caller uses [`submit_data`](Self::submit_data)).
    inflight: VecDeque<Inflight>,
    timeout: Option<Duration>,
    policy: ReconnectPolicy,
    /// Consecutive failed (re)connect attempts, for the backoff schedule;
    /// reset by every successful handshake.
    attempt: u32,
    /// Jitter state for the rand-free backoff (seeded per channel so
    /// parallel sessions don't thunder in phase).
    jitter: u64,
    /// Drain mode: this side stopped consuming data (deadline expiry) but
    /// keeps acking fresh envelopes off-ledger during the ledger wait, so
    /// the peer can finish its walk instead of stalling into `PeerGone`.
    drain: bool,
    /// Silent [`probe_window`](Self::probe_window) passes since the last
    /// ack. Probes are one recv window each and interleave with waits on
    /// *other* channels, so the stall count must survive across calls to
    /// reach the same escalation the blocking pump applies in one call.
    probe_stalls: u32,
    /// Frame-sequence validator for the current connection; reset by
    /// every successful (re-)handshake. A frame it rejects costs the
    /// connection (reconnect-with-resume recovers), never the session.
    state: ProtocolState,
    /// Wire accounting (see crate docs: never part of the cost ledger).
    pub stats: NetStats,
}

impl PeerChannel {
    /// Dials `addr`, sends our `Hello`, and awaits the peer's reply.
    pub fn connect(
        addr: SocketAddr,
        local: Hello,
        expect_role: Role,
        timeout: Option<Duration>,
        policy: ReconnectPolicy,
    ) -> Result<Self, NetError> {
        let mut channel = PeerChannel {
            endpoint: Endpoint::Dial(addr),
            local,
            expect_role,
            conn: None,
            peer_hello: None,
            next_seq: 0,
            pending: VecDeque::new(),
            pending_ledger: None,
            committed: CommitSet::new(local.watermark),
            received_high: local.watermark,
            inflight: VecDeque::new(),
            timeout,
            policy,
            attempt: 0,
            jitter: local.fingerprint ^ ((local.role as u64) << 8) ^ expect_role as u64,
            drain: false,
            probe_stalls: 0,
            state: ProtocolState::dialing(),
            stats: NetStats::default(),
        };
        // The loop, not a single attempt: the listener may answer `Busy`
        // (admission cap) or not be up yet; both resolve under the policy
        // deadline.
        channel.regain(Instant::now())?;
        Ok(channel)
    }

    /// Waits on the mux for the peer to dial us, then replies with our
    /// `Hello`.
    pub fn accept(
        mux: Arc<SessionMux>,
        local: Hello,
        expect_role: Role,
        timeout: Option<Duration>,
        policy: ReconnectPolicy,
    ) -> Result<Self, NetError> {
        let mut channel = Self::accept_lazy(mux, local, expect_role, timeout, policy);
        channel.regain(Instant::now())?;
        Ok(channel)
    }

    /// Like [`accept`](Self::accept), but defers claiming a connection
    /// until the first operation needs one.
    ///
    /// A session that owns channels to several peers must not block on any
    /// one of them at setup: mid-run peers only re-dial when their own next
    /// operation touches this link, so an eager accept here can deadlock
    /// against a peer that is itself blocked on a third party (the resumed
    /// daemon querier waiting for Alice while Alice waits for Bob and Bob
    /// waits for the querier). Each operation already reconnects on demand
    /// under its own deadline, which claims the peer's dial whenever it
    /// arrives.
    pub fn accept_lazy(
        mux: Arc<SessionMux>,
        local: Hello,
        expect_role: Role,
        timeout: Option<Duration>,
        policy: ReconnectPolicy,
    ) -> Self {
        PeerChannel {
            endpoint: Endpoint::Accept(mux),
            local,
            expect_role,
            conn: None,
            peer_hello: None,
            next_seq: 0,
            pending: VecDeque::new(),
            pending_ledger: None,
            committed: CommitSet::new(local.watermark),
            received_high: local.watermark,
            inflight: VecDeque::new(),
            timeout,
            policy,
            attempt: 0,
            jitter: local.fingerprint ^ ((local.role as u64) << 8) ^ expect_role as u64,
            drain: false,
            probe_stalls: 0,
            state: ProtocolState::accepting(),
            stats: NetStats::default(),
        }
    }

    /// Establishes (or claims) a connection now, blocking under the
    /// reconnect-policy deadline, without moving any data. The batched
    /// Paillier session completes the holders' startup dials as a side
    /// effect of the key broadcast; a backend with no setup message (the
    /// CLK exchange) calls this instead so eagerly-dialing peers get
    /// their hello reply at session open rather than at this channel's
    /// first data operation.
    pub fn ensure_connected(&mut self) -> Result<(), NetError> {
        if self.conn.is_none() {
            self.regain(Instant::now())?;
        }
        Ok(())
    }

    /// The peer's most recent announcement.
    pub fn peer_hello(&self) -> Option<Hello> {
        self.peer_hello
    }

    /// The committed low-water mark: every data pair up to and including
    /// this one has been committed (and will be re-acked off-ledger if it
    /// arrives again). Out-of-order commits above it are tracked too —
    /// see [`CommitSet`] — but only the contiguous prefix is safe to
    /// announce in a resume hello.
    pub fn watermark(&self) -> u64 {
        self.committed.low_water()
    }

    /// Establishes (or re-establishes) the connection and exchanges
    /// hellos. One attempt; callers loop under the policy deadline.
    fn establish(&mut self, _start: Instant) -> Result<(), NetError> {
        let reconnecting = self.peer_hello.is_some();
        match &self.endpoint {
            Endpoint::Dial(addr) => {
                net_trace!("{} dial {} ({addr})", self.local.role, self.expect_role);
                let socket = TcpStream::connect_timeout(
                    addr,
                    self.timeout.unwrap_or(Duration::from_secs(10)),
                )?;
                let mut stream = FramedStream::new(socket, self.timeout)?;
                stream.send(K_HELLO, &self.local.encode(), &mut self.stats)?;
                let (kind, payload) = stream.recv(&mut self.stats)?;
                // The reply must be a handshake frame of its exact wire
                // width; anything else is a violation before we even look
                // at the kind.
                if let Err(e) = ProtocolState::dialing().admit(kind, payload.len()) {
                    self.stats.violations += 1;
                    return Err(e);
                }
                if kind == K_BUSY {
                    let busy = Busy::decode(&payload)?;
                    net_trace!("{} dial {}: busy {}ms", self.local.role, self.expect_role, busy.retry_after_ms);
                    return Err(NetError::Busy(busy.retry_after_ms));
                }
                if kind != K_HELLO {
                    return Err(NetError::Handshake(format!(
                        "expected hello reply, got frame kind {kind}"
                    )));
                }
                let hello = Hello::decode(&payload)?;
                hello.verify(self.expect_role, self.local.backend, self.local.fingerprint)?;
                net_trace!(
                    "{} dial {}: handshake done (peer wm={} key={})",
                    self.local.role, self.expect_role, hello.watermark, hello.have_key
                );
                self.conn = Some(stream);
                self.peer_hello = Some(hello);
            }
            Endpoint::Accept(mux) => {
                net_trace!("{} accept-wait {}", self.local.role, self.expect_role);
                let (mut stream, hello) = mux.wait_conn(
                    self.local.fingerprint,
                    self.expect_role,
                    self.policy.deadline,
                )?;
                hello.verify(self.expect_role, self.local.backend, self.local.fingerprint)?;
                stream.send(K_HELLO, &self.local.encode(), &mut self.stats)?;
                net_trace!(
                    "{} accept {}: claimed + replied (peer wm={} key={})",
                    self.local.role, self.expect_role, hello.watermark, hello.have_key
                );
                self.conn = Some(stream);
                self.peer_hello = Some(hello);
            }
        }
        if reconnecting {
            self.stats.reconnects += 1;
        }
        // Fresh connection, fresh state machine: the handshake is behind
        // us, and whether the key phase applies depends on what this side
        // has already committed.
        let mut state = match &self.endpoint {
            Endpoint::Dial(_) => ProtocolState::dialing(),
            Endpoint::Accept(_) => ProtocolState::accepting(),
        };
        state.complete_handshake(self.local.have_key);
        self.state = state;
        self.attempt = 0;
        Ok(())
    }

    /// Runs one received frame header through the connection's state
    /// machine. `false` means the frame was rejected: the violation is
    /// counted and the connection dropped — the caller's reconnect loop
    /// takes it from there, the session never aborts.
    fn admit_frame(&mut self, kind: u8, payload_len: usize) -> bool {
        match self.state.admit(kind, payload_len) {
            Ok(()) => true,
            Err(e) => {
                net_trace!(
                    "{} <- {}: {e}; dropping the connection",
                    self.local.role, self.expect_role
                );
                self.stats.violations += 1;
                self.conn = None;
                false
            }
        }
    }

    /// Drops a dead connection and blocks until a new one is handshaken,
    /// bounded by the operation deadline that started at `start`. Failed
    /// attempts back off on the policy's exponential-with-jitter schedule;
    /// a `Busy` pushback sleeps the listener's own hint instead. Every
    /// pause is off-ledger deployment patience, metered in
    /// [`NetStats::backoff_ms`].
    fn regain(&mut self, start: Instant) -> Result<(), NetError> {
        self.conn = None;
        loop {
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "no connection to {} within {:?}",
                    self.expect_role, self.policy.deadline
                )));
            }
            let pause_ms = match self.establish(start) {
                Ok(()) => return Ok(()),
                Err(NetError::PeerGone(why)) => return Err(NetError::PeerGone(why)),
                // A backend split is a configuration error on one side;
                // no amount of re-dialing fixes a launch flag. Fatal.
                Err(e @ NetError::BackendMismatch { .. }) => return Err(e),
                Err(NetError::Busy(retry_after_ms)) => {
                    self.stats.busy += 1;
                    retry_after_ms
                }
                Err(e) => {
                    net_trace!("{} regain {}: attempt failed: {e}", self.local.role, self.expect_role);
                    self.attempt = self.attempt.saturating_add(1);
                    self.policy.retry.backoff_ms_seeded(self.attempt, &mut self.jitter)
                }
            };
            let remaining = self.policy.deadline.saturating_sub(start.elapsed());
            let pause = Duration::from_millis(pause_ms).min(remaining);
            self.stats.backoff_ms += pause.as_millis() as u64;
            std::thread::sleep(pause);
        }
    }

    fn conn(&mut self, start: Instant) -> Result<&mut FramedStream, NetError> {
        if self.conn.is_none() {
            self.regain(start)?;
        }
        self.conn
            .as_mut()
            .ok_or(NetError::Protocol("connection vanished after regain".into()))
    }

    /// Sends an ack envelope without touching any ledger (duplicates and
    /// loss-recovery acks are deployment noise).
    fn ack_off_ledger(&mut self, pair_id: u64, seq: u64) {
        let frame = Envelope::ack(pair_id, seq).encode();
        let mut stats = std::mem::take(&mut self.stats);
        if let Some(stream) = self.conn.as_mut() {
            if stream.send(K_DATA, &frame, &mut stats).is_err() {
                self.conn = None;
            }
        }
        self.stats = stats;
    }

    /// True when the receiver has already committed this envelope.
    fn is_duplicate(&self, env: &Envelope) -> bool {
        if env.pair_id == 0 {
            self.local.have_key
        } else {
            self.committed.contains(env.pair_id)
        }
    }

    /// Reliably delivers one data envelope and returns once the peer has
    /// acknowledged it (or its reconnect `Hello` shows the pair already
    /// committed). Does not touch the cost ledger: data messages are
    /// recorded by the protocol function that built them, acks by the
    /// receiver.
    pub fn send_data(&mut self, pair_id: u64, payload: &[u8]) -> Result<(), NetError> {
        let start = Instant::now();
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = Envelope::data(pair_id, seq, payload.to_vec()).encode();
        let mut sent_once = false;
        let mut stalled_windows = 0u32;
        loop {
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "pair {pair_id} unacknowledged by {} after {:?}",
                    self.expect_role, self.policy.deadline
                )));
            }
            if self.conn.is_none() {
                self.regain(start)?;
                // The fresh hello may already prove delivery.
                if self.peer_committed(pair_id) {
                    net_trace!(
                        "{} send pair {pair_id} -> {}: proven by hello",
                        self.local.role, self.expect_role
                    );
                    return Ok(());
                }
            }
            let mut stats = std::mem::take(&mut self.stats);
            let sent = self
                .conn
                .as_mut()
                .map(|stream| stream.send(K_DATA, &frame, &mut stats))
                .unwrap_or(Err(NetError::Disconnected));
            self.stats = stats;
            match sent {
                Ok(()) => {
                    if sent_once {
                        self.stats.retransmits += 1;
                        net_trace!(
                            "{} send pair {pair_id} -> {}: retransmit",
                            self.local.role, self.expect_role
                        );
                    }
                    sent_once = true;
                }
                Err(_) => {
                    net_trace!(
                        "{} send pair {pair_id} -> {}: conn dropped on write",
                        self.local.role, self.expect_role
                    );
                    self.conn = None;
                    continue;
                }
            }
            // Await the ack, buffering any data frames that interleave.
            match self.await_ack(pair_id, seq, start) {
                Ok(true) => return Ok(()),
                Ok(false) => {
                    // Timeout window: retransmit — but not forever on the
                    // same connection. A live link that swallows several
                    // retransmissions without ever acking is presumed
                    // desynchronized; force both ends onto a fresh one.
                    if self.conn.is_some() {
                        stalled_windows += 1;
                        if stalled_windows >= ACK_STALL_WINDOWS {
                            net_trace!(
                                "{} send pair {pair_id} -> {}: {stalled_windows} silent \
                                 windows, forcing a reconnect",
                                self.local.role, self.expect_role
                            );
                            stalled_windows = 0;
                            self.conn = None;
                        }
                    } else {
                        stalled_windows = 0;
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// True if the peer's last hello shows `pair_id` durably completed.
    fn peer_committed(&self, pair_id: u64) -> bool {
        match self.peer_hello {
            Some(h) => {
                if pair_id == 0 {
                    h.have_key
                } else {
                    h.watermark >= pair_id
                }
            }
            None => false,
        }
    }

    /// Reads until the matching ack, a timeout (`Ok(false)`), or a dead
    /// connection (also `Ok(false)`, with the connection cleared so the
    /// caller reconnects).
    fn await_ack(&mut self, pair_id: u64, seq: u64, start: Instant) -> Result<bool, NetError> {
        loop {
            if start.elapsed() >= self.policy.deadline {
                return Ok(false);
            }
            let mut stats = std::mem::take(&mut self.stats);
            let received = self
                .conn
                .as_mut()
                .map(|stream| stream.recv(&mut stats))
                .unwrap_or(Err(NetError::Disconnected));
            self.stats = stats;
            match received {
                Ok((kind, payload)) if !self.admit_frame(kind, payload.len()) => {
                    // Out-of-phase frame (mid-session hello, data after
                    // the ledger, wrong-sized fixed frame): the
                    // connection is gone, retransmit over a fresh one.
                    return Ok(false);
                }
                Ok((K_DATA, payload)) => match Envelope::decode(&payload) {
                    Ok(env) if env.kind == FrameKind::Ack => {
                        if env.pair_id == pair_id && env.seq == seq {
                            net_trace!(
                                "{} send pair {pair_id} -> {}: acked",
                                self.local.role, self.expect_role
                            );
                            return Ok(true);
                        }
                        // Stale ack from before a reconnect: ignore.
                    }
                    Ok(env) => self.pending.push_back(env),
                    Err(_) => {
                        // Envelope corruption inside a checksummed frame:
                        // the stream is incoherent, force a reconnect.
                        self.conn = None;
                        return Ok(false);
                    }
                },
                Ok((K_DATA_BATCH, payload)) => match decode_batch(&payload) {
                    Ok(envs) => self.pending.extend(envs),
                    Err(_) => {
                        self.conn = None;
                        return Ok(false);
                    }
                },
                Ok((K_LEDGER, payload)) => self.pending_ledger = Some(payload),
                Ok((_, _)) => {} // goodbye: admitted, nothing to do
                Err(NetError::Timeout) => {
                    net_trace!(
                        "{} send pair {pair_id} -> {}: ack window timed out",
                        self.local.role, self.expect_role
                    );
                    return Ok(false);
                }
                Err(e) => {
                    net_trace!(
                        "{} send pair {pair_id} -> {}: conn died awaiting ack: {e}",
                        self.local.role, self.expect_role
                    );
                    self.conn = None;
                    return Ok(false);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Windowed sending: N pairs in flight, acks absorbed out of order,
    // journal release strictly oldest-first. `send_data` remains the
    // window-of-one path (callers with `--window 1` never touch this).
    // ------------------------------------------------------------------

    /// Registers one data envelope for windowed delivery without blocking.
    /// The envelope is encoded (and its `seq` fixed) here, once; actual
    /// transmission happens on the next [`pump_window`](Self::pump_window).
    pub fn submit_data(&mut self, pair_id: u64, payload: &[u8]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = Envelope::data(pair_id, seq, payload.to_vec()).encode();
        self.inflight.push_back(Inflight {
            pair_id,
            seq,
            frame,
            queued: true,
            sent_once: false,
            acked: false,
        });
    }

    /// Submissions not yet acknowledged — the current window occupancy.
    pub fn window_occupancy(&self) -> usize {
        self.inflight.iter().filter(|e| !e.acked).count()
    }

    /// Pops the longest *acknowledged prefix* of the in-flight queue and
    /// returns its pair ids, oldest first. This is the out-of-order
    /// journal-then-ack release point: a pair acked ahead of an older
    /// unacked one stays held until the older ack (or a reconnect hello
    /// proving it) arrives, so callers journal strictly oldest-first and
    /// the upstream commit contract holds for every interleaving.
    pub fn take_acked_prefix(&mut self) -> Vec<u64> {
        let mut released = Vec::new();
        while self.inflight.front().is_some_and(|e| e.acked) {
            if let Some(entry) = self.inflight.pop_front() {
                released.push(entry.pair_id);
            }
        }
        released
    }

    /// Drives the windowed sender until at most `max_unacked` submissions
    /// remain unacknowledged, transmitting queued envelopes eagerly —
    /// multi-envelope flushes coalesce into one batch frame — and
    /// absorbing acks as they arrive. Applies the same timeout
    /// retransmission, silent-window stall escalation, and
    /// reconnect-with-hello-proof recovery as [`send_data`](Self::send_data),
    /// but for the whole window at once. Bounded by the policy deadline.
    pub fn pump_window(&mut self, max_unacked: usize) -> Result<(), NetError> {
        let start = Instant::now();
        let mut stalled_windows = 0u32;
        loop {
            let need_conn =
                self.inflight.iter().any(|e| e.queued) || self.window_occupancy() > max_unacked;
            if self.conn.is_none() && need_conn {
                self.regain(start)?;
                // The fresh hello may prove some (or all) pairs delivered;
                // everything else goes back on the wire.
                self.absorb_peer_hello();
                continue;
            }
            self.flush_queued();
            if self.conn.is_some() {
                self.stats.max_window =
                    self.stats.max_window.max(self.window_occupancy() as u64);
                // Drain whatever is already readable so ack bookkeeping
                // stays fresh even on eager (non-full-window) passes.
                loop {
                    let ready = match self.conn.as_mut() {
                        Some(stream) => stream.ready().unwrap_or(false),
                        None => false,
                    };
                    if !ready || self.window_occupancy() == 0 || !self.recv_windowed() {
                        break;
                    }
                }
            }
            if self.window_occupancy() <= max_unacked
                && !self.inflight.iter().any(|e| e.queued)
            {
                return Ok(());
            }
            if self.conn.is_none() {
                continue;
            }
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "{} windowed pair(s) unacknowledged by {} after {:?}",
                    self.window_occupancy(),
                    self.expect_role,
                    self.policy.deadline
                )));
            }
            // Block one recv window for acks.
            if self.recv_windowed() {
                stalled_windows = 0;
            } else if self.conn.is_some() {
                // Timeout: retransmit everything still unacked — and if
                // several consecutive windows stay silent, force a fresh
                // connection exactly like the window-of-one sender (the
                // peer may be desynchronized on a frame it can never
                // complete).
                stalled_windows += 1;
                for entry in self.inflight.iter_mut() {
                    if !entry.acked {
                        entry.queued = true;
                    }
                }
                if stalled_windows >= ACK_STALL_WINDOWS {
                    net_trace!(
                        "{} window -> {}: {stalled_windows} silent windows, forcing a reconnect",
                        self.local.role, self.expect_role
                    );
                    stalled_windows = 0;
                    self.conn = None;
                }
            } else {
                stalled_windows = 0;
            }
        }
    }

    /// Blocks until every windowed submission is acknowledged.
    pub fn flush_window(&mut self) -> Result<(), NetError> {
        self.pump_window(0)
    }

    /// One bounded liveness pass over a windowed sender, for a caller
    /// blocked on a *different* channel while this one still holds
    /// unacknowledged submissions.
    ///
    /// [`pump_window`](Self::pump_window) only blocks — and therefore only
    /// reaches its stall escalation — while occupancy exceeds the window
    /// cap. A pipelined chain can wedge *below* that cap: if the upstream
    /// peer's own window runs dry because our acks gate its progress, no
    /// new submission ever arrives to push occupancy over the cap, and a
    /// dead downstream connection is never probed (net_chaos's drop soak
    /// deadlocks all three parties exactly this way). This pass flushes
    /// anything queued, waits at most one recv window for acks, and counts
    /// silent passes across calls: enough of them retransmits the window
    /// and then forces a reconnect, the same escalation the blocking pump
    /// applies — so the downstream leg heals while the caller keeps
    /// servicing its upstream wait.
    pub fn probe_window(&mut self) -> Result<(), NetError> {
        if self.window_occupancy() == 0 {
            self.probe_stalls = 0;
            return Ok(());
        }
        let start = Instant::now();
        if self.conn.is_none() {
            self.regain(start)?;
            self.absorb_peer_hello();
        }
        self.flush_queued();
        if self.conn.is_none() {
            return Ok(()); // flush lost the connection; next probe regains
        }
        if self.recv_windowed() {
            self.probe_stalls = 0;
            // Drain whatever else is already readable before returning.
            loop {
                let ready = match self.conn.as_mut() {
                    Some(stream) => stream.ready().unwrap_or(false),
                    None => false,
                };
                if !ready || self.window_occupancy() == 0 || !self.recv_windowed() {
                    break;
                }
            }
        } else if self.conn.is_some() {
            self.probe_stalls += 1;
            for entry in self.inflight.iter_mut() {
                if !entry.acked {
                    entry.queued = true;
                }
            }
            if self.probe_stalls >= ACK_STALL_WINDOWS {
                net_trace!(
                    "{} probe -> {}: {} silent probes, forcing a reconnect",
                    self.local.role, self.expect_role, self.probe_stalls
                );
                self.probe_stalls = 0;
                self.conn = None;
            }
        }
        Ok(())
    }

    /// Folds a fresh reconnect hello into the in-flight queue: pairs the
    /// peer proves committed are acked (their acks died with the old
    /// connection), everything else is queued for retransmission.
    fn absorb_peer_hello(&mut self) {
        let (watermark, have_key) = match self.peer_hello {
            Some(h) => (h.watermark, h.have_key),
            None => (0, false),
        };
        for entry in self.inflight.iter_mut() {
            if entry.acked {
                continue;
            }
            let proven = if entry.pair_id == 0 {
                have_key
            } else {
                entry.pair_id <= watermark
            };
            if proven {
                entry.acked = true;
                entry.queued = false;
            } else {
                entry.queued = true;
            }
        }
    }

    /// Writes every queued envelope to the current connection: one rides a
    /// plain data frame, several coalesce into batch frames under the
    /// flush budget. A write failure drops the connection and leaves the
    /// unsent tail queued for the reconnect path.
    fn flush_queued(&mut self) {
        if self.conn.is_none() || !self.inflight.iter().any(|e| e.queued) {
            return;
        }
        let mut stats = std::mem::take(&mut self.stats);
        let mut sent_entries = 0usize;
        let mut conn_ok = true;
        {
            let queued: Vec<&[u8]> = self
                .inflight
                .iter()
                .filter(|e| e.queued)
                .map(|e| e.frame.as_slice())
                .collect();
            // Group the burst into frames under the byte budget.
            let mut groups: Vec<Vec<&[u8]>> = Vec::new();
            let mut current: Vec<&[u8]> = Vec::new();
            let mut current_bytes = 0usize;
            for frame in queued {
                if !current.is_empty() && current_bytes + frame.len() > FLUSH_BUDGET {
                    groups.push(std::mem::take(&mut current));
                    current_bytes = 0;
                }
                current_bytes += frame.len();
                current.push(frame);
            }
            if !current.is_empty() {
                groups.push(current);
            }
            let Some(stream) = self.conn.as_mut() else {
                self.stats = stats;
                return;
            };
            for group in &groups {
                let sent = match group.as_slice() {
                    [single] => stream.send(K_DATA, single, &mut stats),
                    many => {
                        let outcome = stream.send(K_DATA_BATCH, &encode_batch(many), &mut stats);
                        if outcome.is_ok() {
                            stats.batches_sent += 1;
                            stats.batched_envelopes += many.len() as u64;
                        }
                        outcome
                    }
                };
                match sent {
                    Ok(()) => sent_entries += group.len(),
                    Err(_) => {
                        conn_ok = false;
                        break;
                    }
                }
            }
        }
        self.stats = stats;
        if sent_entries > 0 {
            net_trace!(
                "{} window -> {}: flushed {sent_entries} envelope(s)",
                self.local.role, self.expect_role
            );
        }
        if !conn_ok {
            net_trace!(
                "{} window -> {}: conn dropped on flush",
                self.local.role, self.expect_role
            );
            self.conn = None;
        }
        // Flushes go out in queue order: the first `sent_entries` queued
        // entries are the ones now on the wire.
        let mut retransmitted = 0u64;
        for entry in self
            .inflight
            .iter_mut()
            .filter(|e| e.queued)
            .take(sent_entries)
        {
            entry.queued = false;
            if entry.sent_once {
                retransmitted += 1;
            }
            entry.sent_once = true;
        }
        self.stats.retransmits += retransmitted;
    }

    /// One bounded read on a windowed channel: notes acks against the
    /// in-flight queue, buffers interleaved data envelopes for
    /// [`recv_data`](Self::recv_data), stashes an early ledger. Returns
    /// whether a frame was consumed; a timeout or a dead connection
    /// returns `false` (the pump loop recovers either way).
    fn recv_windowed(&mut self) -> bool {
        let mut stats = std::mem::take(&mut self.stats);
        let received = self
            .conn
            .as_mut()
            .map(|stream| stream.recv(&mut stats))
            .unwrap_or(Err(NetError::Disconnected));
        self.stats = stats;
        match received {
            Ok((kind, payload)) if !self.admit_frame(kind, payload.len()) => false,
            Ok((K_DATA, payload)) => match Envelope::decode(&payload) {
                Ok(env) if env.kind == FrameKind::Ack => {
                    self.note_ack(&env);
                    true
                }
                Ok(env) => {
                    self.pending.push_back(env);
                    true
                }
                Err(_) => {
                    self.conn = None;
                    false
                }
            },
            Ok((K_DATA_BATCH, payload)) => match decode_batch(&payload) {
                Ok(envs) => {
                    for env in envs {
                        if env.kind == FrameKind::Ack {
                            self.note_ack(&env);
                        } else {
                            self.pending.push_back(env);
                        }
                    }
                    true
                }
                Err(_) => {
                    self.conn = None;
                    false
                }
            },
            Ok((K_LEDGER, payload)) => {
                self.pending_ledger = Some(payload);
                true
            }
            Ok((_, _)) => true, // goodbye: admitted, nothing to do
            Err(NetError::Timeout) => false,
            Err(_) => {
                self.conn = None;
                false
            }
        }
    }

    /// Marks the in-flight entry matching an ack envelope as acknowledged.
    /// Stale acks (from before a reconnect, or for already-released pairs)
    /// are ignored, exactly like the window-of-one path.
    fn note_ack(&mut self, env: &Envelope) {
        for entry in self.inflight.iter_mut() {
            if !entry.acked && entry.pair_id == env.pair_id && entry.seq == env.seq {
                net_trace!(
                    "{} window -> {}: pair {} acked",
                    self.local.role, self.expect_role, entry.pair_id
                );
                entry.acked = true;
                entry.queued = false;
                return;
            }
        }
    }

    /// Blocks until the next *fresh* data envelope (duplicates are re-acked
    /// off-ledger and skipped), bounded by the reconnect deadline.
    pub fn recv_data(&mut self) -> Result<IncomingData, NetError> {
        let start = Instant::now();
        loop {
            if let Some(incoming) = self.recv_data_step(start)? {
                return Ok(incoming);
            }
            // A slice can end with a just-buffered batch; screen it before
            // consulting the deadline.
            if self.pending.is_empty() && start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "no data from {} within {:?}",
                    self.expect_role, self.policy.deadline
                )));
            }
        }
    }

    /// One bounded slice of [`recv_data`](Self::recv_data): drains the
    /// buffer, then waits at most one recv window on the wire. `Ok(None)`
    /// means nothing fresh surfaced yet — the caller owns the overall
    /// deadline, so it can interleave slices with work on other channels
    /// (windowed Bob probes his querier leg between slices; see
    /// [`probe_window`](Self::probe_window)).
    pub fn try_recv_data(&mut self) -> Result<Option<IncomingData>, NetError> {
        self.recv_data_step(Instant::now())
    }

    /// The shared slice: `start` bounds a reconnect claimed inside it.
    fn recv_data_step(&mut self, start: Instant) -> Result<Option<IncomingData>, NetError> {
        while let Some(env) = self.pending.pop_front() {
            if let Some(incoming) = self.screen(env) {
                return Ok(Some(incoming));
            }
        }
        self.conn(start)?;
        let mut stats = std::mem::take(&mut self.stats);
        let received = self
            .conn
            .as_mut()
            .map(|stream| stream.recv(&mut stats))
            .unwrap_or(Err(NetError::Disconnected));
        self.stats = stats;
        match received {
            Ok((kind, payload)) if !self.admit_frame(kind, payload.len()) => {}
            Ok((K_DATA, payload)) => match Envelope::decode(&payload) {
                Ok(env) if env.kind == FrameKind::Data => {
                    if let Some(incoming) = self.screen(env) {
                        net_trace!(
                            "{} recv pair {} from {}",
                            self.local.role, incoming.pair_id, self.expect_role
                        );
                        return Ok(Some(incoming));
                    }
                }
                Ok(_) => {} // stray ack: stale, drop
                Err(_) => self.conn = None,
            },
            Ok((K_DATA_BATCH, payload)) => match decode_batch(&payload) {
                // Buffer the whole burst; the caller's next slice screens
                // each entry in send order.
                Ok(envs) => self.pending.extend(envs),
                Err(_) => self.conn = None,
            },
            Ok((K_LEDGER, payload)) => self.pending_ledger = Some(payload),
            Ok((_, _)) => {} // goodbye: admitted, nothing to do
            Err(NetError::Timeout) => {}
            Err(_) => self.conn = None,
        }
        Ok(None)
    }

    /// Dedup screen: fresh envelopes pass through, committed ones are
    /// re-acked off-ledger and counted as duplicates. A pair that was
    /// already *surfaced* but not yet committed — a windowed sender
    /// retransmitting into a slow commit chain — is dropped silently:
    /// no re-ack (the ack is the commit) and no second processing.
    fn screen(&mut self, env: Envelope) -> Option<IncomingData> {
        if env.kind != FrameKind::Data {
            return None;
        }
        if self.is_duplicate(&env) {
            net_trace!(
                "{} <- {}: pair {} duplicate, re-acked",
                self.local.role, self.expect_role, env.pair_id
            );
            self.stats.duplicates += 1;
            self.ack_off_ledger(env.pair_id, env.seq);
            return None;
        }
        if env.pair_id != 0 && env.pair_id <= self.received_high {
            net_trace!(
                "{} <- {}: pair {} already surfaced (high {}), dropped",
                self.local.role, self.expect_role, env.pair_id, self.received_high
            );
            self.stats.duplicates += 1;
            return None;
        }
        if env.pair_id != 0 {
            self.received_high = env.pair_id;
        }
        Some(IncomingData {
            pair_id: env.pair_id,
            seq: env.seq,
            payload: env.payload,
        })
    }

    /// Acknowledges an accepted envelope *on the ledger* — the one ack per
    /// data message the in-process `ReliableLink` also records — and
    /// commits the receiver's dedup state. Callers journal their durable
    /// state *before* calling this: ack loss is recovered by the sender
    /// retransmitting into the dedup screen.
    pub fn ack_on_ledger(&mut self, incoming: &IncomingData, ledger: &mut CostLedger) {
        ledger.record_message(ENVELOPE_OVERHEAD);
        self.commit_ack(incoming);
    }

    /// Commits the dedup state for an accepted envelope and sends its ack,
    /// with the ack's ledger cost already recorded by the caller. This is
    /// the two-phase variant of [`ack_on_ledger`](Self::ack_on_ledger): a
    /// party that must journal *between* recording the cost and releasing
    /// the sender (so a crash on either side of the journal write reconciles
    /// to exactly one recorded ack) records first, journals, then commits.
    pub fn commit_ack(&mut self, incoming: &IncomingData) {
        if incoming.pair_id == 0 {
            self.local.have_key = true;
            self.state.note_key();
        } else {
            self.committed.insert(incoming.pair_id);
            // The hello may only claim the contiguous prefix.
            self.local.watermark = self.committed.low_water();
        }
        self.ack_off_ledger(incoming.pair_id, incoming.seq);
    }

    /// Switches this receiver into drain mode: it no longer consumes data
    /// envelopes (the session's deadline expired and remaining pairs were
    /// abandoned locally), but during [`recv_ledger`](Self::recv_ledger)
    /// it still acks fresh envelopes off-ledger so the oblivious peer can
    /// complete its deterministic walk and ship its cost summary instead
    /// of stalling into `PeerGone`. Drained pairs are never committed to
    /// the dedup watermark — they were abandoned, not processed.
    pub fn drain_stragglers(&mut self) {
        self.drain = true;
    }

    /// Sends the end-of-session cost summary followed by a goodbye.
    pub fn send_ledger(&mut self, ledger: &CostLedger) -> Result<(), NetError> {
        let start = Instant::now();
        let payload = ledger.encode();
        loop {
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "could not deliver the cost summary to {}",
                    self.expect_role
                )));
            }
            self.conn(start)?;
            let mut stats = std::mem::take(&mut self.stats);
            let sent = self
                .conn
                .as_mut()
                .map(|stream| {
                    stream.send(K_LEDGER, &payload, &mut stats)?;
                    stream.send(K_GOODBYE, &[], &mut stats)
                })
                .unwrap_or(Err(NetError::Disconnected));
            self.stats = stats;
            match sent {
                Ok(()) => return Ok(()),
                Err(_) => self.conn = None,
            }
        }
    }

    /// One data envelope arriving during the ledger wait: late
    /// retransmissions are re-acked to keep the dedup contract alive, and
    /// in drain mode fresh envelopes are acked-and-discarded (off-ledger,
    /// uncommitted — the pair was abandoned) so the oblivious sender can
    /// finish its walk.
    fn straggler(&mut self, env: Envelope) {
        if env.kind != FrameKind::Data {
            return;
        }
        if self.is_duplicate(&env) {
            self.stats.duplicates += 1;
            self.ack_off_ledger(env.pair_id, env.seq);
        } else if self.drain {
            self.stats.drained += 1;
            self.ack_off_ledger(env.pair_id, env.seq);
        }
    }

    /// Blocks for the peer's end-of-session cost summary.
    ///
    /// The deadline here is a *liveness* bound — it restarts whenever a
    /// frame arrives — because a draining peer may legitimately stream a
    /// long tail of pairs (see [`drain_stragglers`](Self::drain_stragglers))
    /// before its summary; only silence counts against it.
    pub fn recv_ledger(&mut self) -> Result<CostLedger, NetError> {
        let mut start = Instant::now();
        loop {
            if let Some(payload) = self.pending_ledger.take() {
                return CostLedger::decode(&payload).ok_or_else(|| {
                    NetError::Protocol(format!(
                        "cost summary has {} bytes, expected {}",
                        payload.len(),
                        CostLedger::WIRE_LEN
                    ))
                });
            }
            if start.elapsed() >= self.policy.deadline {
                return Err(NetError::PeerGone(format!(
                    "no cost summary from {} within {:?}",
                    self.expect_role, self.policy.deadline
                )));
            }
            self.conn(start)?;
            let mut stats = std::mem::take(&mut self.stats);
            let received = self
                .conn
                .as_mut()
                .map(|stream| stream.recv(&mut stats))
                .unwrap_or(Err(NetError::Disconnected));
            self.stats = stats;
            match received {
                Ok((kind, payload)) if !self.admit_frame(kind, payload.len()) => {}
                Ok((K_LEDGER, payload)) => self.pending_ledger = Some(payload),
                Ok((K_DATA, payload)) => {
                    start = Instant::now();
                    if let Ok(env) = Envelope::decode(&payload) {
                        self.straggler(env);
                    }
                }
                Ok((K_DATA_BATCH, payload)) => {
                    start = Instant::now();
                    if let Ok(envs) = decode_batch(&payload) {
                        for env in envs {
                            self.straggler(env);
                        }
                    }
                }
                Ok((_, _)) => start = Instant::now(),
                Err(NetError::Timeout) => {}
                Err(_) => self.conn = None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hello::Backend;

    fn link(
        timeout_ms: u64,
        deadline_ms: u64,
    ) -> (PeerChannel, PeerChannel, Arc<SessionMux>) {
        let timeout = Some(Duration::from_millis(timeout_ms));
        let policy = ReconnectPolicy {
            retry: RetryPolicy {
                base_delay_ms: 5,
                max_delay_ms: 50,
                ..RetryPolicy::default()
            },
            deadline: Duration::from_millis(deadline_ms),
        };
        let mux = Arc::new(SessionMux::bind("127.0.0.1:0", timeout).unwrap());
        let addr = mux.local_addr();
        let mux2 = Arc::clone(&mux);
        let acceptor = std::thread::spawn(move || {
            PeerChannel::accept(mux2, Hello::new(Role::Bob, Backend::Paillier, 77), Role::Alice, timeout, policy)
                .unwrap()
        });
        let dialer = PeerChannel::connect(
            addr,
            Hello::new(Role::Alice, Backend::Paillier, 77),
            Role::Bob,
            timeout,
            policy,
        )
        .unwrap();
        let accepted = acceptor.join().unwrap();
        (dialer, accepted, mux)
    }

    #[test]
    fn data_is_delivered_and_acked_exactly_once_on_the_ledger() {
        let (mut alice, mut bob, _mux) = link(2_000, 5_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            let incoming = bob.recv_data().unwrap();
            assert_eq!(incoming.pair_id, 1);
            assert_eq!(incoming.payload, vec![5; 64]);
            bob.ack_on_ledger(&incoming, &mut ledger);
            assert_eq!(ledger.messages, 1);
            assert_eq!(ledger.bytes, ENVELOPE_OVERHEAD as u64);
            (bob, ledger)
        });
        alice.send_data(1, &[5; 64]).unwrap();
        let (bob, _) = receiver.join().unwrap();
        assert_eq!(bob.watermark(), 1);
        assert_eq!(alice.stats.retransmits, 0);
    }

    #[test]
    fn duplicate_delivery_is_reacked_off_ledger() {
        let (mut alice, mut bob, _mux) = link(200, 3_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            let incoming = bob.recv_data().unwrap();
            bob.ack_on_ledger(&incoming, &mut ledger);
            // Second, duplicate transmission of pair 1 plus a fresh pair 2:
            // only pair 2 surfaces, the dup is re-acked silently.
            let second = bob.recv_data().unwrap();
            assert_eq!(second.pair_id, 2);
            bob.ack_on_ledger(&second, &mut ledger);
            (bob, ledger)
        });
        alice.send_data(1, &[1]).unwrap();
        // Force a duplicate of pair 1 on the wire by replaying the envelope.
        let dup = Envelope::data(1, 99, vec![1]).encode();
        let mut stats = NetStats::default();
        alice.conn.as_mut().unwrap().send(K_DATA, &dup, &mut stats).unwrap();
        alice.send_data(2, &[2]).unwrap();
        let (bob, ledger) = receiver.join().unwrap();
        assert_eq!(bob.stats.duplicates, 1);
        assert_eq!(ledger.messages, 2, "dup ack never hit the ledger");
    }

    #[test]
    fn sender_survives_a_receiver_restart() {
        let timeout = Some(Duration::from_millis(150));
        let policy = ReconnectPolicy {
            retry: RetryPolicy {
                base_delay_ms: 5,
                max_delay_ms: 50,
                ..RetryPolicy::default()
            },
            deadline: Duration::from_secs(10),
        };
        let mux = Arc::new(SessionMux::bind("127.0.0.1:0", timeout).unwrap());
        let addr = mux.local_addr();
        let mux2 = Arc::clone(&mux);
        let acceptor = std::thread::spawn(move || {
            let mut bob = PeerChannel::accept(
                Arc::clone(&mux2),
                Hello::new(Role::Bob, Backend::Paillier, 9),
                Role::Alice,
                timeout,
                policy,
            )
            .unwrap();
            let mut ledger = CostLedger::new();
            let first = bob.recv_data().unwrap();
            bob.ack_on_ledger(&first, &mut ledger);
            // Simulate a crash after committing pair 1: drop the
            // connection and come back with the watermark in the hello.
            let watermark = bob.watermark();
            drop(bob);
            let mut resumed_hello = Hello::new(Role::Bob, Backend::Paillier, 9);
            resumed_hello.watermark = watermark;
            resumed_hello.have_key = true;
            let mut bob = PeerChannel::accept(
                Arc::clone(&mux2),
                resumed_hello,
                Role::Alice,
                timeout,
                policy,
            )
            .unwrap();
            let second = bob.recv_data().unwrap();
            assert_eq!(second.pair_id, 2);
            bob.ack_on_ledger(&second, &mut ledger);
            ledger
        });
        let mut alice = PeerChannel::connect(
            addr,
            Hello::new(Role::Alice, Backend::Paillier, 9),
            Role::Bob,
            timeout,
            policy,
        )
        .unwrap();
        alice.send_data(1, &[7; 32]).unwrap();
        alice.send_data(2, &[8; 32]).unwrap();
        let ledger = acceptor.join().unwrap();
        assert_eq!(ledger.messages, 2);
        assert!(alice.stats.reconnects >= 1, "the drop forced a reconnect");
    }

    #[test]
    fn out_of_phase_frames_cost_the_connection_not_the_session() {
        let (mut alice, mut bob, _mux) = link(200, 8_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            let incoming = bob.recv_data().unwrap();
            assert_eq!(incoming.pair_id, 1);
            bob.ack_on_ledger(&incoming, &mut ledger);
            bob
        });
        // Splice a handshake frame into the established stream: the
        // receiver must treat it as a protocol violation, drop only this
        // connection, and pick the pair up over the reconnect.
        let mut stats = NetStats::default();
        let rogue = Hello::new(Role::Alice, Backend::Paillier, 77).encode();
        alice
            .conn
            .as_mut()
            .unwrap()
            .send(K_HELLO, &rogue, &mut stats)
            .unwrap();
        alice.send_data(1, &[9; 16]).unwrap();
        let bob = receiver.join().unwrap();
        assert!(bob.stats.violations >= 1, "the rogue hello was counted");
        assert_eq!(bob.watermark(), 1, "the pair still committed");
        assert!(
            alice.stats.reconnects >= 1,
            "delivery finished over a fresh connection"
        );
    }

    #[test]
    fn a_corrupted_length_field_cannot_stall_the_session() {
        let (mut alice, mut bob, _mux) = link(150, 10_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            let incoming = bob.recv_data().unwrap();
            assert_eq!(incoming.pair_id, 1);
            bob.ack_on_ledger(&incoming, &mut ledger);
            bob
        });
        // Write a raw header claiming a huge payload, as a bit flip inside
        // a length field would: Bob's decoder waits for bytes that never
        // amount to a frame, eating every retransmission as "payload". The
        // sender's stall escalation must force a fresh connection and
        // deliver the pair there.
        {
            use std::io::Write;
            let mut header = vec![K_DATA];
            header.extend_from_slice(&(8u32 << 20).to_le_bytes());
            alice
                .conn
                .as_mut()
                .unwrap()
                .stream_mut()
                .write_all(&header)
                .unwrap();
        }
        alice.send_data(1, &[3; 24]).unwrap();
        let bob = receiver.join().unwrap();
        assert_eq!(bob.watermark(), 1, "the pair still committed");
        assert!(
            alice.stats.reconnects >= 1,
            "delivery finished over a fresh connection (stats: {})",
            alice.stats
        );
    }

    #[test]
    fn a_peer_that_stays_gone_surfaces_as_peer_gone() {
        let (mut alice, bob, _mux) = link(50, 300);
        drop(bob);
        let err = alice.send_data(1, &[1]).unwrap_err();
        assert!(matches!(err, NetError::PeerGone(_)));
    }

    #[test]
    fn windowed_pairs_deliver_and_release_oldest_first() {
        let (mut alice, mut bob, _mux) = link(2_000, 10_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            for expect in 1..=10u64 {
                let incoming = bob.recv_data().unwrap();
                assert_eq!(incoming.pair_id, expect, "pairs surface in send order");
                bob.ack_on_ledger(&incoming, &mut ledger);
            }
            (bob, ledger)
        });
        let mut released = Vec::new();
        for pair in 1..=10u64 {
            alice.submit_data(pair, &[pair as u8; 48]);
            alice.pump_window(3).unwrap();
            released.extend(alice.take_acked_prefix());
        }
        alice.flush_window().unwrap();
        released.extend(alice.take_acked_prefix());
        assert_eq!(released, (1..=10).collect::<Vec<u64>>());
        assert_eq!(alice.window_occupancy(), 0);
        let (bob, ledger) = receiver.join().unwrap();
        assert_eq!(ledger.messages, 10, "each pair acked exactly once on-ledger");
        assert_eq!(bob.watermark(), 10);
    }

    #[test]
    fn a_full_window_submitted_up_front_coalesces_into_batch_frames() {
        let (mut alice, mut bob, _mux) = link(2_000, 10_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            for expect in 1..=6u64 {
                let incoming = bob.recv_data().unwrap();
                assert_eq!(incoming.pair_id, expect);
                bob.ack_on_ledger(&incoming, &mut ledger);
            }
            ledger
        });
        for pair in 1..=6u64 {
            alice.submit_data(pair, &[0xA5; 32]);
        }
        alice.flush_window().unwrap();
        let ledger = receiver.join().unwrap();
        assert_eq!(ledger.messages, 6);
        assert!(
            alice.stats.batches_sent >= 1,
            "a six-envelope burst must coalesce (stats: {})",
            alice.stats
        );
        assert!(alice.stats.batched_envelopes >= 6);
        assert!(alice.stats.max_window >= 6, "occupancy peak recorded");
    }

    #[test]
    fn windowed_sender_survives_a_receiver_restart() {
        let timeout = Some(Duration::from_millis(150));
        let policy = ReconnectPolicy {
            retry: RetryPolicy {
                base_delay_ms: 5,
                max_delay_ms: 50,
                ..RetryPolicy::default()
            },
            deadline: Duration::from_secs(10),
        };
        let mux = Arc::new(SessionMux::bind("127.0.0.1:0", timeout).unwrap());
        let addr = mux.local_addr();
        let mux2 = Arc::clone(&mux);
        let acceptor = std::thread::spawn(move || {
            let mut bob = PeerChannel::accept(
                Arc::clone(&mux2),
                Hello::new(Role::Bob, Backend::Paillier, 31),
                Role::Alice,
                timeout,
                policy,
            )
            .unwrap();
            let mut ledger = CostLedger::new();
            for _ in 0..2 {
                let incoming = bob.recv_data().unwrap();
                bob.ack_on_ledger(&incoming, &mut ledger);
            }
            // Crash after committing pairs 1–2; resume from the watermark.
            let watermark = bob.watermark();
            drop(bob);
            let mut resumed = Hello::new(Role::Bob, Backend::Paillier, 31);
            resumed.watermark = watermark;
            resumed.have_key = true;
            let mut bob = PeerChannel::accept(
                Arc::clone(&mux2),
                resumed,
                Role::Alice,
                timeout,
                policy,
            )
            .unwrap();
            for expect in 3..=4u64 {
                let incoming = bob.recv_data().unwrap();
                assert_eq!(incoming.pair_id, expect);
                bob.ack_on_ledger(&incoming, &mut ledger);
            }
            ledger
        });
        let mut alice = PeerChannel::connect(
            addr,
            Hello::new(Role::Alice, Backend::Paillier, 31),
            Role::Bob,
            timeout,
            policy,
        )
        .unwrap();
        for pair in 1..=4u64 {
            alice.submit_data(pair, &[pair as u8; 16]);
        }
        alice.flush_window().unwrap();
        let released = alice.take_acked_prefix();
        assert_eq!(released, vec![1, 2, 3, 4], "oldest-first across the restart");
        let ledger = acceptor.join().unwrap();
        assert_eq!(ledger.messages, 4, "no pair double-acked on the ledger");
        assert!(alice.stats.reconnects >= 1);
    }

    /// The net_chaos drop-soak deadlock: an ack frame lost on a live
    /// connection while occupancy sits at (not above) the window cap. The
    /// blocking pump returns instantly below the cap, so only
    /// [`PeerChannel::probe_window`] — the pass a caller interleaves with
    /// waits on *other* channels — can rediscover the pair, retransmit it,
    /// and collect the receiver's off-ledger duplicate re-ack.
    #[test]
    fn a_lost_ack_below_the_window_cap_is_probed_back_to_life() {
        let (mut alice, mut bob, _mux) = link(150, 8_000);
        let receiver = std::thread::spawn(move || {
            let mut ledger = CostLedger::new();
            let incoming = bob.recv_data().unwrap();
            assert_eq!(incoming.pair_id, 1);
            // Commit with the ack path unplugged: the dedup state and the
            // ledger advance, but the ack never reaches the wire.
            let live = bob.conn.take();
            bob.ack_on_ledger(&incoming, &mut ledger);
            bob.conn = live;
            // Service the sender's probe retransmission: the committed
            // duplicate is re-acked off-ledger, nothing fresh surfaces.
            for _ in 0..100 {
                if bob.stats.duplicates > 0 {
                    break;
                }
                let _ = bob.try_recv_data();
            }
            (bob, ledger)
        });
        alice.submit_data(1, &[3; 48]);
        alice.pump_window(1).unwrap();
        assert!(
            alice.take_acked_prefix().is_empty(),
            "the ack was swallowed before the wire"
        );
        // Only probes from here on — exactly what windowed Bob can do
        // while blocked waiting on Alice.
        for _ in 0..200 {
            alice.probe_window().unwrap();
            if alice.window_occupancy() == 0 {
                break;
            }
        }
        assert_eq!(alice.take_acked_prefix(), vec![1]);
        let (bob, ledger) = receiver.join().unwrap();
        assert_eq!(ledger.messages, 1, "the re-ack stayed off the ledger");
        assert!(bob.stats.duplicates >= 1, "heal came via retransmission");
        assert!(alice.stats.retransmits >= 1);
    }

    #[test]
    fn a_retransmission_of_an_uncommitted_pair_is_dropped_silently() {
        let (mut alice, mut bob, _mux) = link(100, 600);
        let receiver = std::thread::spawn(move || {
            // Surface pair 1 but do NOT commit it (the windowed sender's
            // retransmit lands while the commit chain is still running).
            let first = bob.recv_data().unwrap();
            assert_eq!(first.pair_id, 1);
            // The duplicate must neither surface again nor be acked: the
            // next recv sees nothing fresh and times out into PeerGone.
            let err = bob.recv_data().unwrap_err();
            assert!(matches!(err, NetError::PeerGone(_)));
            assert_eq!(bob.stats.duplicates, 1, "the copy was counted and dropped");
            bob
        });
        // First (windowed) transmission, then a verbatim retransmission.
        alice.submit_data(1, &[7; 8]);
        alice.pump_window(1).unwrap();
        let copy = alice.inflight.front().unwrap().frame.clone();
        let mut stats = NetStats::default();
        alice.conn.as_mut().unwrap().send(K_DATA, &copy, &mut stats).unwrap();
        let bob = receiver.join().unwrap();
        assert_eq!(bob.watermark(), 0, "nothing committed");
    }

    #[test]
    fn cost_summaries_cross_the_link() {
        let (mut alice, mut bob, _mux) = link(2_000, 5_000);
        let mut ledger = CostLedger::new();
        ledger.encryptions = 42;
        ledger.record_message(1000);
        let expected = ledger.clone();
        let receiver = std::thread::spawn(move || bob.recv_ledger().unwrap());
        alice.send_ledger(&ledger).unwrap();
        assert_eq!(receiver.join().unwrap(), expected);
    }
}
