//! Per-connection protocol state machine.
//!
//! The frame codec ([`frame`](crate::frame)) guarantees byte integrity;
//! this module guarantees *sequence* integrity. Every connection walks the
//! same phases — handshake → key → pairs → done — and each arriving frame
//! kind is admitted against the current phase before anyone parses its
//! payload. A valid-looking frame in the wrong phase (a second `Hello`
//! mid-session, data after the cost ledger, a `Busy` pushback from a peer
//! that already admitted us) is a [`NetError::ProtocolViolation`]: the
//! receiver drops that one connection and lets the reconnect machinery
//! take over, so a confused — or hostile — peer can never wedge a session
//! worker or a daemon, only burn its own socket.
//!
//! Fixed-width kinds are also size-checked here: `Hello`, `Busy`, the
//! cost ledger, and `Goodbye` have exactly one legal payload length each,
//! so an "oversized" frame is a violation even though it decodes.

use crate::batch::BATCH_MIN_LEN;
use crate::frame::{K_BUSY, K_DATA, K_DATA_BATCH, K_GOODBYE, K_HELLO, K_LEDGER};
use crate::hello::{BUSY_LEN, HELLO_LEN};
use crate::NetError;
use pprl_crypto::protocol::transport::ENVELOPE_OVERHEAD;
use pprl_crypto::CostLedger;

/// Where a connection stands in the session lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Nothing identified yet: the only admissible frames are the
    /// handshake kinds (`Hello`; plus `Busy` on the dialing side).
    Handshake,
    /// Handshake done, waiting for the Paillier key broadcast (the
    /// dialer announced `have_key = false`). Data frames carry the key.
    Key,
    /// Steady state: data envelopes for record pairs, then the ledger.
    Pairs,
    /// The peer's cost ledger arrived; only the goodbye may follow.
    Done,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Phase::Handshake => "handshake",
            Phase::Key => "key",
            Phase::Pairs => "pairs",
            Phase::Done => "done",
        };
        write!(f, "{name}")
    }
}

/// Which side of the connection this state machine guards. Only the
/// handshake differs: a dialer may legitimately be answered with `Busy`,
/// an acceptor must see a `Hello` first and nothing else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Dialing,
    Accepting,
}

/// The per-connection frame-sequence validator.
///
/// Construct one per *connection* (not per session): a reconnect replays
/// the handshake, so the channel resets its state machine every time a
/// socket is (re-)established.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolState {
    phase: Phase,
    side: Side,
}

impl ProtocolState {
    /// State machine for the dialing side: expects `Hello` or `Busy`
    /// as the reply to its own hello.
    pub fn dialing() -> Self {
        ProtocolState {
            phase: Phase::Handshake,
            side: Side::Dialing,
        }
    }

    /// State machine for the accepting side: expects exactly one `Hello`
    /// and will never admit `Busy` (pushback flows listener → dialer).
    pub fn accepting() -> Self {
        ProtocolState {
            phase: Phase::Handshake,
            side: Side::Accepting,
        }
    }

    /// The current phase (for traces and violation messages).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Leaves the handshake once both hellos have cleared. `have_key`
    /// comes from the hello exchange: a peer that already holds the
    /// session key skips the key phase entirely.
    pub fn complete_handshake(&mut self, have_key: bool) {
        if self.phase == Phase::Handshake {
            self.phase = if have_key { Phase::Pairs } else { Phase::Key };
        }
    }

    /// Records that the key broadcast was consumed; later frames are
    /// judged against the pairs phase.
    pub fn note_key(&mut self) {
        if self.phase == Phase::Key {
            self.phase = Phase::Pairs;
        }
    }

    /// Validates one arriving frame against the current phase, advancing
    /// the phase where the frame itself marks a transition (the ledger
    /// closes the session). `Err(ProtocolViolation)` means the caller
    /// must drop this connection — and only this connection.
    pub fn admit(&mut self, kind: u8, payload_len: usize) -> Result<(), NetError> {
        let violation = |why: String| Err(NetError::ProtocolViolation(why));
        let exact = |name: &str, want: usize, got: usize| {
            if got == want {
                Ok(())
            } else {
                violation(format!("{name} frame carries {got} bytes, expected {want}"))
            }
        };
        match (self.phase, kind) {
            (Phase::Handshake, K_HELLO) => exact("hello", HELLO_LEN, payload_len),
            (Phase::Handshake, K_BUSY) if self.side == Side::Dialing => {
                exact("busy", BUSY_LEN, payload_len)
            }
            (Phase::Handshake, other) => violation(format!(
                "frame kind {other} during handshake, expected hello{}",
                if self.side == Side::Dialing { " or busy" } else { "" }
            )),
            // Repeated handshake frames mid-session: a peer that wants to
            // renegotiate must reconnect, not splice a hello into the
            // data stream.
            (phase, K_HELLO) => violation(format!("hello frame repeated in {phase} phase")),
            (phase, K_BUSY) => violation(format!("busy frame in {phase} phase")),
            (Phase::Done, K_DATA) => violation("data frame after the cost ledger".into()),
            (_, K_DATA) => {
                if payload_len < ENVELOPE_OVERHEAD {
                    violation(format!(
                        "data frame carries {payload_len} bytes, below the \
                         {ENVELOPE_OVERHEAD}-byte envelope header"
                    ))
                } else {
                    Ok(())
                }
            }
            (Phase::Done, K_DATA_BATCH) => {
                violation("batched data frame after the cost ledger".into())
            }
            (_, K_DATA_BATCH) => {
                if payload_len < BATCH_MIN_LEN {
                    violation(format!(
                        "batched data frame carries {payload_len} bytes, below the \
                         {BATCH_MIN_LEN}-byte minimum for one enveloped entry"
                    ))
                } else {
                    Ok(())
                }
            }
            (Phase::Done, K_LEDGER) => violation("cost ledger repeated".into()),
            (_, K_LEDGER) => {
                exact("ledger", CostLedger::WIRE_LEN, payload_len)?;
                self.phase = Phase::Done;
                Ok(())
            }
            (_, K_GOODBYE) => exact("goodbye", 0, payload_len),
            // The frame decoder already rejects unknown kinds; keep the
            // guard anyway so this layer stands alone.
            (phase, other) => violation(format!("unknown frame kind {other} in {phase} phase")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_session_walks_every_phase() {
        let mut st = ProtocolState::accepting();
        assert_eq!(st.phase(), Phase::Handshake);
        st.admit(K_HELLO, HELLO_LEN).unwrap();
        st.complete_handshake(false);
        assert_eq!(st.phase(), Phase::Key);
        st.admit(K_DATA, 4096).unwrap();
        st.note_key();
        assert_eq!(st.phase(), Phase::Pairs);
        st.admit(K_DATA, ENVELOPE_OVERHEAD).unwrap();
        st.admit(K_LEDGER, CostLedger::WIRE_LEN).unwrap();
        assert_eq!(st.phase(), Phase::Done);
        st.admit(K_GOODBYE, 0).unwrap();
    }

    #[test]
    fn have_key_skips_the_key_phase() {
        let mut st = ProtocolState::dialing();
        st.admit(K_HELLO, HELLO_LEN).unwrap();
        st.complete_handshake(true);
        assert_eq!(st.phase(), Phase::Pairs);
    }

    #[test]
    fn busy_is_dialer_only() {
        let mut dialer = ProtocolState::dialing();
        dialer.admit(K_BUSY, BUSY_LEN).unwrap();
        let mut acceptor = ProtocolState::accepting();
        assert!(matches!(
            acceptor.admit(K_BUSY, BUSY_LEN),
            Err(NetError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn data_during_handshake_is_a_violation() {
        let mut st = ProtocolState::accepting();
        assert!(matches!(
            st.admit(K_DATA, 64),
            Err(NetError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn repeated_hello_mid_session_is_a_violation() {
        let mut st = ProtocolState::accepting();
        st.admit(K_HELLO, HELLO_LEN).unwrap();
        st.complete_handshake(true);
        assert!(matches!(
            st.admit(K_HELLO, HELLO_LEN),
            Err(NetError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn wrong_sized_fixed_width_frames_are_violations() {
        let mut st = ProtocolState::accepting();
        assert!(st.admit(K_HELLO, HELLO_LEN + 1).is_err());
        st.admit(K_HELLO, HELLO_LEN).unwrap();
        st.complete_handshake(true);
        assert!(st.admit(K_LEDGER, CostLedger::WIRE_LEN - 8).is_err());
        assert!(st.admit(K_GOODBYE, 3).is_err());
        assert!(st.admit(K_DATA, ENVELOPE_OVERHEAD - 1).is_err());
    }

    #[test]
    fn batched_data_follows_the_data_frame_rules() {
        let mut st = ProtocolState::dialing();
        st.admit(K_HELLO, HELLO_LEN).unwrap();
        st.complete_handshake(true);
        st.admit(K_DATA_BATCH, BATCH_MIN_LEN).unwrap();
        assert!(
            st.admit(K_DATA_BATCH, BATCH_MIN_LEN - 1).is_err(),
            "a batch too small for one enveloped entry must be rejected"
        );
        st.admit(K_LEDGER, CostLedger::WIRE_LEN).unwrap();
        assert!(
            st.admit(K_DATA_BATCH, BATCH_MIN_LEN).is_err(),
            "no batched data after the cost ledger"
        );
    }

    #[test]
    fn nothing_follows_the_ledger_but_goodbye() {
        let mut st = ProtocolState::dialing();
        st.admit(K_HELLO, HELLO_LEN).unwrap();
        st.complete_handshake(true);
        st.admit(K_LEDGER, CostLedger::WIRE_LEN).unwrap();
        assert!(st.admit(K_DATA, 64).is_err());
        assert!(st.admit(K_LEDGER, CostLedger::WIRE_LEN).is_err());
        st.admit(K_GOODBYE, 0).unwrap();
    }
}
