//! A framed, timeout-aware wrapper around one `TcpStream`.

use crate::frame::{encode_frame, FrameDecoder, FRAME_OVERHEAD};
use crate::{NetError, NetStats};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One TCP connection speaking the frame codec, with byte accounting.
#[derive(Debug)]
pub struct FramedStream {
    stream: TcpStream,
    decoder: FrameDecoder,
    read_timeout: Option<Duration>,
    /// When the decoder first reported an *incomplete* frame with no
    /// newer completion — the clock behind the desync stall check.
    mid_frame_since: Option<Instant>,
}

impl FramedStream {
    /// Wraps a connected socket; `read_timeout` bounds every `recv` and is
    /// also applied as the write timeout (`None` = block forever).
    pub fn new(stream: TcpStream, read_timeout: Option<Duration>) -> Result<Self, NetError> {
        stream.set_nodelay(true).map_err(NetError::Io)?;
        stream.set_read_timeout(read_timeout).map_err(NetError::Io)?;
        stream.set_write_timeout(read_timeout).map_err(NetError::Io)?;
        Ok(FramedStream {
            stream,
            decoder: FrameDecoder::new(),
            read_timeout,
            mid_frame_since: None,
        })
    }

    /// How long the stream may sit inside one incomplete frame without
    /// ever completing it before it is declared desynchronized. A bit
    /// flip inside a length field yields a frame the peer will never
    /// finish — while the sender's retransmissions keep *appending* bytes
    /// toward the bogus length, so byte-level progress proves nothing and
    /// only frame completion resets the clock. Blocking streams (no read
    /// timeout) never poll, so they cannot run this check.
    fn stall_window(&self) -> Duration {
        match self.read_timeout {
            Some(t) => (t * 8).max(Duration::from_millis(500)),
            None => Duration::MAX,
        }
    }

    /// The configured read timeout.
    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout
    }

    /// Raw socket access for in-crate tests that need to write hostile
    /// bytes past the frame encoder.
    #[cfg(test)]
    pub(crate) fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Changes the read timeout (e.g. to poll without blocking).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout).map_err(NetError::Io)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Nonblocking probe: whether a `recv` could make progress right now —
    /// the decoder holds buffered bytes, or the kernel has data (or an
    /// EOF) waiting on the socket. Never waits out the read timeout, so
    /// pollers can skip idle lines in microseconds instead of burning the
    /// kernel's timer granularity (~10 ms) per empty pass.
    pub fn ready(&mut self) -> Result<bool, NetError> {
        if self.decoder.pending() > 0 {
            return Ok(true);
        }
        self.stream.set_nonblocking(true).map_err(NetError::Io)?;
        let mut probe = [0u8; 1];
        let ready = match self.stream.peek(&mut probe) {
            // Ok(0) is EOF: report ready so the next recv surfaces it.
            Ok(_) => true,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
            Err(e) => {
                let _ = self.stream.set_nonblocking(false);
                return Err(NetError::Io(e));
            }
        };
        self.stream.set_nonblocking(false).map_err(NetError::Io)?;
        Ok(ready)
    }

    /// Writes one whole frame, tallying its wire bytes.
    pub fn send(&mut self, kind: u8, payload: &[u8], stats: &mut NetStats) -> Result<(), NetError> {
        let frame = encode_frame(kind, payload);
        self.stream.write_all(&frame).map_err(NetError::Io)?;
        stats.frames_sent += 1;
        stats.bytes_sent += frame.len() as u64;
        Ok(())
    }

    /// Reads the next whole frame, blocking up to the read timeout.
    ///
    /// [`NetError::Timeout`] means nothing (complete) arrived in the
    /// window; the connection is still usable. Any other error means the
    /// connection is dead and must be re-established.
    pub fn recv(&mut self, stats: &mut NetStats) -> Result<(u8, Vec<u8>), NetError> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some((kind, payload)) = self.decoder.next_frame()? {
                self.mid_frame_since = None;
                stats.frames_received += 1;
                stats.bytes_received += (FRAME_OVERHEAD + payload.len()) as u64;
                return Ok((kind, payload));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                // pprl:allow(panic-path): Read::read guarantees n <= chunk.len()
                Ok(n) => self.decoder.push(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.decoder.pending() > 0 {
                        // Mid-frame with the window expired and no frame
                        // ever completing: the stream is desynchronized
                        // (e.g. a corrupted length field) and only a fresh
                        // connection can heal it.
                        let since = *self.mid_frame_since.get_or_insert_with(Instant::now);
                        if since.elapsed() >= self.stall_window() {
                            return Err(NetError::Frame(format!(
                                "stalled mid-frame: {} byte(s) pending with no \
                                 frame completing within {:?}",
                                self.decoder.pending(),
                                self.stall_window()
                            )));
                        }
                    } else {
                        self.mid_frame_since = None;
                    }
                    return Err(NetError::Timeout);
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{K_DATA, K_GOODBYE};
    use std::net::TcpListener;

    /// A connected loopback socket pair.
    pub(crate) fn pair() -> (FramedStream, FramedStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let timeout = Some(Duration::from_secs(5));
        (
            FramedStream::new(client, timeout).unwrap(),
            FramedStream::new(server, timeout).unwrap(),
        )
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let (mut a, mut b) = pair();
        let mut stats = NetStats::default();
        a.send(K_DATA, &[9; 128], &mut stats).unwrap();
        a.send(K_GOODBYE, &[], &mut stats).unwrap();
        assert_eq!(stats.frames_sent, 2);
        let mut rstats = NetStats::default();
        assert_eq!(b.recv(&mut rstats).unwrap(), (K_DATA, vec![9; 128]));
        assert_eq!(b.recv(&mut rstats).unwrap(), (K_GOODBYE, vec![]));
        assert_eq!(rstats.bytes_received, stats.bytes_sent);
    }

    #[test]
    fn short_timeout_reports_timeout_not_death() {
        let (mut a, _b) = pair();
        a.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        let mut stats = NetStats::default();
        assert!(matches!(a.recv(&mut stats), Err(NetError::Timeout)));
    }

    #[test]
    fn a_frame_that_never_completes_is_a_desync_not_an_eternal_wait() {
        let (mut a, b) = pair();
        a.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        // A plausible header claiming 1 MiB, then silence — exactly what a
        // bit flip inside the length field looks like from the receiver.
        let mut header = vec![K_DATA];
        header.extend_from_slice(&(1u32 << 20).to_le_bytes());
        {
            use std::io::Write;
            let mut raw = b;
            raw.stream.write_all(&header).unwrap();
            // Keep the socket open: the stall must be detected, not EOF.
            let mut stats = NetStats::default();
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                match a.recv(&mut stats) {
                    Err(NetError::Timeout) => {
                        assert!(std::time::Instant::now() < deadline, "stall never detected");
                    }
                    Err(NetError::Frame(why)) => {
                        assert!(why.contains("stalled mid-frame"), "unexpected error: {why}");
                        break;
                    }
                    other => panic!("expected a mid-frame stall, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn peer_close_reports_disconnect() {
        let (mut a, b) = pair();
        drop(b);
        let mut stats = NetStats::default();
        assert!(matches!(a.recv(&mut stats), Err(NetError::Disconnected)));
    }
}
