//! Opt-in wire tracing for live diagnosis of handshake and reconnect
//! behavior: set `PPRL_NET_TRACE=1` and every channel/mux event prints a
//! timestamped line to stderr. Off (one relaxed atomic load) otherwise —
//! never enabled in tests or benchmarks, never on the ledger.

use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("PPRL_NET_TRACE").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
    })
}

/// Prints one trace line (pid, millisecond timestamp, event) when
/// `PPRL_NET_TRACE` is set.
pub(crate) fn trace(args: std::fmt::Arguments<'_>) {
    if !enabled() {
        return;
    }
    let ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() % 100_000_000)
        .unwrap_or(0);
    eprintln!("pprl-net-trace[{} {ms}] {args}", std::process::id());
}

macro_rules! net_trace {
    ($($arg:tt)*) => {
        crate::trace::trace(format_args!($($arg)*))
    };
}
pub(crate) use net_trace;
