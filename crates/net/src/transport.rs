//! [`Transport`] over real TCP sockets.
//!
//! `TcpTransport` registers one loopback socket *pair* per party link and
//! holds both ends, so the entire PR 1 reliability stack —
//! [`ReliableLink`], even [`FaultyTransport`] fault injection — runs
//! unchanged, except that every frame now crosses the kernel's TCP stack
//! instead of a `VecDeque`. This is the drop-in configuration for
//! single-process benchmarks over real sockets; the fully distributed
//! three-process deployment uses [`PeerChannel`](crate::peer::PeerChannel)
//! instead, where each process holds only its own ends.
//!
//! `recv` blocks briefly (the poll timeout) while frames are known to be
//! in flight, so loopback latency never masquerades as loss and inflates
//! the retry counters; once the line is drained it returns `None` almost
//! immediately, keeping `ReliableLink`'s drain loops cheap.
//!
//! [`Transport`]: pprl_crypto::protocol::Transport
//! [`ReliableLink`]: pprl_crypto::protocol::ReliableLink
//! [`FaultyTransport`]: pprl_crypto::protocol::transport::FaultyTransport

use crate::frame::K_DATA;
use crate::stream::FramedStream;
use crate::{NetError, NetStats};
use pprl_crypto::protocol::transport::PartyId;
use pprl_crypto::protocol::Transport;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

const PARTIES: [PartyId; 3] = [PartyId::Querier, PartyId::Alice, PartyId::Bob];

/// Near-zero timeout for draining an idle line.
const DRAIN_TIMEOUT: Duration = Duration::from_millis(1);

/// A real-socket [`Transport`]: directed frames over loopback TCP pairs.
pub struct TcpTransport {
    /// `(holder, peer) → holder's end of the holder↔peer socket`.
    ends: HashMap<(usize, usize), FramedStream>,
    /// Frames written but not yet read back out, per destination party.
    in_flight: [usize; 3],
    poll_timeout: Duration,
    /// Wire accounting across every registered end.
    pub stats: NetStats,
}

impl TcpTransport {
    /// An empty transport; `poll_timeout` bounds how long `recv` waits for
    /// an in-flight frame to clear the kernel.
    pub fn new(poll_timeout: Duration) -> Self {
        TcpTransport {
            ends: HashMap::new(),
            in_flight: [0; 3],
            poll_timeout,
            stats: NetStats::default(),
        }
    }

    /// A transport with every party link registered — the full three-party
    /// topology over loopback.
    pub fn loopback_mesh(poll_timeout: Duration) -> Result<Self, NetError> {
        let mut transport = Self::new(poll_timeout);
        transport.register_link(PartyId::Querier, PartyId::Alice)?;
        transport.register_link(PartyId::Querier, PartyId::Bob)?;
        transport.register_link(PartyId::Alice, PartyId::Bob)?;
        Ok(transport)
    }

    /// Creates a connected loopback socket pair for the `a`↔`b` link and
    /// registers both ends.
    pub fn register_link(&mut self, a: PartyId, b: PartyId) -> Result<(), NetError> {
        if a == b {
            return Err(NetError::Protocol("a party cannot link to itself".into()));
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let dialed = TcpStream::connect(addr)?;
        let (accepted, _) = listener.accept()?;
        let timeout = Some(self.poll_timeout);
        self.ends
            .insert((a.index(), b.index()), FramedStream::new(dialed, timeout)?);
        self.ends
            .insert((b.index(), a.index()), FramedStream::new(accepted, timeout)?);
        Ok(())
    }

    /// One receive pass over `to`'s ends at the given per-end timeout.
    fn poll(&mut self, to: PartyId, timeout: Duration) -> Option<(PartyId, Vec<u8>)> {
        for peer in PARTIES {
            if peer == to {
                continue;
            }
            let Some(stream) = self.ends.get_mut(&(to.index(), peer.index())) else {
                continue;
            };
            // Probe before blocking: an idle end costs microseconds, not
            // the kernel's read-timeout granularity (~10 ms per pass).
            if !stream.ready().unwrap_or(false) {
                continue;
            }
            if stream.set_read_timeout(Some(timeout)).is_err() {
                continue;
            }
            match stream.recv(&mut self.stats) {
                Ok((K_DATA, payload)) => {
                    // pprl:allow(panic-path): PartyId::index() is 0..3 by construction, matching the array
                    self.in_flight[to.index()] = self.in_flight[to.index()].saturating_sub(1);
                    return Some((peer, payload));
                }
                Ok(_) => {
                    // Unknown frame kind on a data-only link: drop it.
                    // pprl:allow(panic-path): PartyId::index() is 0..3 by construction, matching the array
                    self.in_flight[to.index()] = self.in_flight[to.index()].saturating_sub(1);
                }
                Err(_) => {}
            }
        }
        None
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, from: PartyId, to: PartyId, frame: Vec<u8>) {
        let Some(stream) = self.ends.get_mut(&(from.index(), to.index())) else {
            // No such link: the frame is lost, exactly like a dead network.
            return;
        };
        if stream.send(K_DATA, &frame, &mut self.stats).is_ok() {
            // pprl:allow(panic-path): PartyId::index() is 0..3 by construction, matching the array
            self.in_flight[to.index()] += 1;
        }
    }

    fn recv(&mut self, to: PartyId) -> Option<(PartyId, Vec<u8>)> {
        // Drain pass first: anything already in the kernel comes out fast.
        if let Some(found) = self.poll(to, DRAIN_TIMEOUT) {
            return Some(found);
        }
        // pprl:allow(panic-path): PartyId::index() is 0..3 by construction, matching the array
        if self.in_flight[to.index()] > 0 {
            // Frames are on the wire; give loopback latency a real window
            // so it is never misread as loss (which would cost a retry).
            // Sliced across the ends so one idle link cannot eat the whole
            // window while the frame waits on another.
            let start = std::time::Instant::now();
            while start.elapsed() < self.poll_timeout {
                if let Some(found) = self.poll(to, DRAIN_TIMEOUT) {
                    return Some(found);
                }
                // The ready() probe made each pass ~µs; pace the spin so a
                // genuinely lost frame doesn't peg a core for the window.
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_crypto::protocol::transport::{FaultConfig, FaultyTransport};
    use pprl_crypto::protocol::{ReliableLink, RetryPolicy};
    use pprl_crypto::CostLedger;

    #[test]
    fn frames_route_between_parties() {
        let mut t = TcpTransport::loopback_mesh(Duration::from_millis(500)).unwrap();
        t.send(PartyId::Alice, PartyId::Bob, vec![1, 2, 3]);
        t.send(PartyId::Querier, PartyId::Bob, vec![9]);
        let mut got = vec![
            t.recv(PartyId::Bob).expect("first frame"),
            t.recv(PartyId::Bob).expect("second frame"),
        ];
        got.sort_by_key(|(_, f)| f.len());
        assert_eq!(got[0], (PartyId::Querier, vec![9]));
        assert_eq!(got[1], (PartyId::Alice, vec![1, 2, 3]));
        assert_eq!(t.recv(PartyId::Bob), None);
        assert_eq!(t.recv(PartyId::Alice), None);
    }

    #[test]
    fn reliable_link_runs_over_real_sockets_without_spurious_retries() {
        let transport = TcpTransport::loopback_mesh(Duration::from_millis(500)).unwrap();
        let mut link = ReliableLink::new(transport, RetryPolicy::default(), 5);
        let mut ledger = CostLedger::new();
        for pair in 1..=20u64 {
            let payload = vec![pair as u8; 128];
            let got = link
                .deliver(PartyId::Alice, PartyId::Bob, pair, payload.clone(), &mut ledger)
                .unwrap();
            assert_eq!(got, payload);
        }
        assert_eq!(ledger.retries, 0, "loopback latency must not look like loss");
        assert_eq!(ledger.messages, 20, "exactly one ack per delivery");
    }

    #[test]
    fn fault_injection_composes_over_tcp() {
        let transport = TcpTransport::loopback_mesh(Duration::from_millis(500)).unwrap();
        let faulty = FaultyTransport::new(transport, FaultConfig::uniform(0.10), 23);
        let mut link = ReliableLink::new(faulty, RetryPolicy::with_retries(32), 24);
        let mut ledger = CostLedger::new();
        for pair in 1..=30u64 {
            let payload = pair.to_be_bytes().to_vec();
            let got = link
                .deliver(PartyId::Bob, PartyId::Querier, pair, payload.clone(), &mut ledger)
                .unwrap();
            assert_eq!(got, payload);
        }
        assert!(
            ledger.retries > 0 || ledger.corrupt_dropped > 0 || ledger.duplicates_discarded > 0,
            "a 10% fault rate must leave traces"
        );
    }
}
