//! Reconnect-with-resume through a real severed socket: a `PeerChannel`
//! pair talks through an in-process [`ChaosProxy`], the link is partitioned
//! mid-stream, healed, and the session must finish with ledger parity —
//! every pair acked exactly once on-ledger, retransmits and reconnects
//! visible only in the off-ledger `NetStats`.

use pprl_crypto::protocol::RetryPolicy;
use pprl_crypto::CostLedger;
use pprl_net::{Backend, ChaosConfig, ChaosProxy, Hello, PeerChannel, ReconnectPolicy, Role, SessionMux};
use std::sync::Arc;
use std::time::Duration;

const FP: u64 = 4242;
const PAIRS: u64 = 12;

fn policy() -> ReconnectPolicy {
    ReconnectPolicy {
        retry: RetryPolicy {
            base_delay_ms: 5,
            max_delay_ms: 50,
            ..RetryPolicy::default()
        },
        deadline: Duration::from_secs(20),
    }
}

#[test]
fn partition_mid_stream_heals_with_ledger_parity() {
    let timeout = Some(Duration::from_millis(150));
    let mux = Arc::new(SessionMux::bind("127.0.0.1:0", timeout).unwrap());
    let proxy =
        Arc::new(ChaosProxy::start("127.0.0.1:0", mux.local_addr(), ChaosConfig::clean(11)).unwrap());
    let chaos_addr = proxy.local_addr();

    let mux2 = Arc::clone(&mux);
    let receiver = std::thread::spawn(move || {
        let mut bob = PeerChannel::accept(
            mux2,
            Hello::new(Role::Bob, Backend::Paillier, FP),
            Role::Alice,
            timeout,
            policy(),
        )
        .unwrap();
        let mut ledger = CostLedger::new();
        let mut payloads = Vec::new();
        for _ in 0..PAIRS {
            // recv_data rides out the partition internally: the severed
            // connection surfaces as a reconnect via the mux, not an error.
            let incoming = bob.recv_data().unwrap();
            payloads.push((incoming.pair_id, incoming.payload.clone()));
            bob.ack_on_ledger(&incoming, &mut ledger);
        }
        let remote = bob.recv_ledger().unwrap();
        (bob, ledger, payloads, remote)
    });

    let mut alice = PeerChannel::connect(
        chaos_addr,
        Hello::new(Role::Alice, Backend::Paillier, FP),
        Role::Bob,
        timeout,
        policy(),
    )
    .unwrap();

    for pair_id in 1..=PAIRS {
        if pair_id == PAIRS / 2 {
            // Go dark mid-session; heal from a timer so the sender's
            // retry loop (not test choreography) finds the healed link.
            proxy.set_partition(true);
            let heal = Arc::clone(&proxy);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(400));
                heal.set_partition(false);
            });
        }
        alice
            .send_data(pair_id, &[pair_id as u8; 48])
            .unwrap_or_else(|e| panic!("pair {pair_id} never delivered: {e}"));
    }
    let mut sent = CostLedger::new();
    sent.encryptions = 7;
    sent.record_message(256);
    alice.send_ledger(&sent).unwrap();

    let (bob, ledger, payloads, remote) = receiver.join().unwrap();

    // Every pair arrived, in order, byte-exact, and was ledgered once.
    let expect: Vec<(u64, Vec<u8>)> = (1..=PAIRS).map(|id| (id, vec![id as u8; 48])).collect();
    assert_eq!(payloads, expect);
    assert_eq!(ledger.messages, PAIRS, "each ack hit the ledger exactly once");
    assert_eq!(bob.watermark(), PAIRS);
    assert_eq!(remote, sent, "the cost summary crossed the healed link intact");

    // The fault was real and it stayed off the ledger.
    assert!(
        alice.stats.reconnects >= 1,
        "the partition forced at least one reconnect (stats: {})",
        alice.stats
    );
    assert!(proxy.stats().partitions >= 1, "the proxy severed the link");
}
