//! Property tests for the TCP frame codec: the decoder is *total* and
//! *incremental* — arbitrary bytes, torn frames, bit-flips, and hostile
//! length fields must produce `Ok(None)` (wait for more) or `Err` (drop
//! the connection), never a panic, never a bogus frame, and never an
//! attacker-sized allocation. Mirrors `crates/crypto/tests/message_fuzz.rs`
//! one layer down the stack.

use pprl_net::frame::{encode_frame, FrameDecoder, FRAME_OVERHEAD, MAX_FRAME_LEN};
use pprl_net::hello::Hello;
use proptest::prelude::*;

/// A valid frame: any kind byte, payload up to a few KiB.
fn encoded_frame() -> impl Strategy<Value = (u8, Vec<u8>)> {
    (any::<u8>(), prop::collection::vec(any::<u8>(), 0..2048))
}

proptest! {
    /// Feeding arbitrary bytes never panics, whatever chunking.
    #[test]
    fn decode_is_total_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..64,
    ) {
        let mut dec = FrameDecoder::new();
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }

    /// A frame split at every possible point reassembles exactly once,
    /// and every strict prefix yields `Ok(None)` — torn writes wait,
    /// they never error or mis-frame.
    #[test]
    fn torn_frames_reassemble((kind, payload) in encoded_frame()) {
        let wire = encode_frame(kind, &payload);
        for cut in 0..wire.len() {
            let mut dec = FrameDecoder::new();
            dec.push(&wire[..cut]);
            prop_assert_eq!(dec.next_frame().unwrap(), None, "prefix {} framed", cut);
            dec.push(&wire[cut..]);
            prop_assert_eq!(dec.next_frame().unwrap(), Some((kind, payload.clone())));
            prop_assert_eq!(dec.next_frame().unwrap(), None);
            prop_assert_eq!(dec.pending(), 0);
        }
    }

    /// Every single-bit flip in a frame is caught: either the checksum
    /// fails, or the length field changed and the frame (now shorter or
    /// longer) can no longer both complete and verify. No flip may ever
    /// deliver a different (kind, payload) as valid.
    #[test]
    fn bit_flips_never_deliver_garbage((kind, payload) in encoded_frame(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let wire = encode_frame(kind, &payload);
        let mut bad = wire.clone();
        let byte = pos.index(bad.len());
        bad[byte] ^= 1u8 << bit;
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        match dec.next_frame() {
            Ok(Some((k, p))) => {
                // Every bit of kind, length, and payload is covered by the
                // checksum, and a flipped checksum no longer matches the
                // body — so nothing may ever come out of a flipped frame.
                prop_assert!(false, "corrupted frame delivered kind {k} ({} bytes)", p.len());
            }
            Ok(None) | Err(_) => {}
        }
    }

    /// Length fields beyond the cap are rejected before any allocation,
    /// whatever the rest of the bytes claim.
    #[test]
    fn oversized_lengths_rejected(kind in any::<u8>(), len in (MAX_FRAME_LEN as u32 + 1)..=u32::MAX, tail in prop::collection::vec(any::<u8>(), 0..32)) {
        let mut wire = vec![kind];
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&tail);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        prop_assert!(dec.next_frame().is_err());
    }

    /// Back-to-back frames split at arbitrary chunk sizes all come out, in
    /// order, byte-exact.
    #[test]
    fn streams_of_frames_reassemble(
        frames in prop::collection::vec(encoded_frame(), 1..8),
        chunk in 1usize..97,
    ) {
        let mut wire = Vec::new();
        for (kind, payload) in &frames {
            wire.extend_from_slice(&encode_frame(*kind, payload));
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.push(piece);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(frame);
            }
        }
        prop_assert_eq!(out, frames);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Hello decoding is total on arbitrary bytes.
    #[test]
    fn hello_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Hello::decode(&bytes);
    }

    /// The frame overhead constant is exact for every payload size tried.
    #[test]
    fn frame_overhead_is_exact((kind, payload) in encoded_frame()) {
        prop_assert_eq!(encode_frame(kind, &payload).len(), FRAME_OVERHEAD + payload.len());
    }
}
