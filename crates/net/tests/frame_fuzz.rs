//! Property tests for the TCP frame codec: the decoder is *total* and
//! *incremental* — arbitrary bytes, torn frames, bit-flips, and hostile
//! length fields must produce `Ok(None)` (wait for more) or `Err` (drop
//! the connection), never a panic, never a bogus frame, and never an
//! attacker-sized allocation. Mirrors `crates/crypto/tests/message_fuzz.rs`
//! one layer down the stack.

use pprl_net::frame::{encode_frame, FrameDecoder, K_DATA_BATCH, K_HELLO, FRAME_OVERHEAD, MAX_FRAME_LEN};
use pprl_net::hello::{Backend, Busy, Hello, Role, BUSY_LEN, HELLO_LEN, NET_VERSION};
use proptest::prelude::*;

/// A valid frame: a *known* kind byte (the decoder rejects unknown kinds
/// at the header, so roundtrip properties must stay inside the protocol's
/// kind space), payload up to a few KiB.
fn encoded_frame() -> impl Strategy<Value = (u8, Vec<u8>)> {
    (K_HELLO..=K_DATA_BATCH, prop::collection::vec(any::<u8>(), 0..2048))
}

/// An arbitrary well-formed hello (any version/role/watermark/key bit).
fn any_hello() -> impl Strategy<Value = Hello> {
    (
        any::<u16>(),
        (0u8..3).prop_map(|i| match i {
            0 => Role::Alice,
            1 => Role::Bob,
            _ => Role::Query,
        }),
        any::<bool>().prop_map(|b| if b { Backend::Bloom } else { Backend::Paillier }),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(version, role, backend, fingerprint, watermark, have_key)| Hello {
                version,
                role,
                backend,
                fingerprint,
                watermark,
                have_key,
            },
        )
}

proptest! {
    /// Feeding arbitrary bytes never panics, whatever chunking.
    #[test]
    fn decode_is_total_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..64,
    ) {
        let mut dec = FrameDecoder::new();
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }

    /// A frame split at every possible point reassembles exactly once,
    /// and every strict prefix yields `Ok(None)` — torn writes wait,
    /// they never error or mis-frame.
    #[test]
    fn torn_frames_reassemble((kind, payload) in encoded_frame()) {
        let wire = encode_frame(kind, &payload);
        for cut in 0..wire.len() {
            let mut dec = FrameDecoder::new();
            dec.push(&wire[..cut]);
            prop_assert_eq!(dec.next_frame().unwrap(), None, "prefix {} framed", cut);
            dec.push(&wire[cut..]);
            prop_assert_eq!(dec.next_frame().unwrap(), Some((kind, payload.clone())));
            prop_assert_eq!(dec.next_frame().unwrap(), None);
            prop_assert_eq!(dec.pending(), 0);
        }
    }

    /// Every single-bit flip in a frame is caught: either the checksum
    /// fails, or the length field changed and the frame (now shorter or
    /// longer) can no longer both complete and verify. No flip may ever
    /// deliver a different (kind, payload) as valid.
    #[test]
    fn bit_flips_never_deliver_garbage((kind, payload) in encoded_frame(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let wire = encode_frame(kind, &payload);
        let mut bad = wire.clone();
        let byte = pos.index(bad.len());
        bad[byte] ^= 1u8 << bit;
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        match dec.next_frame() {
            Ok(Some((k, p))) => {
                // Every bit of kind, length, and payload is covered by the
                // checksum, and a flipped checksum no longer matches the
                // body — so nothing may ever come out of a flipped frame.
                prop_assert!(false, "corrupted frame delivered kind {k} ({} bytes)", p.len());
            }
            Ok(None) | Err(_) => {}
        }
    }

    /// Length fields beyond the cap are rejected before any allocation,
    /// whatever the rest of the bytes claim.
    #[test]
    fn oversized_lengths_rejected(kind in any::<u8>(), len in (MAX_FRAME_LEN as u32 + 1)..=u32::MAX, tail in prop::collection::vec(any::<u8>(), 0..32)) {
        let mut wire = vec![kind];
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&tail);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        prop_assert!(dec.next_frame().is_err());
    }

    /// Back-to-back frames split at arbitrary chunk sizes all come out, in
    /// order, byte-exact.
    #[test]
    fn streams_of_frames_reassemble(
        frames in prop::collection::vec(encoded_frame(), 1..8),
        chunk in 1usize..97,
    ) {
        let mut wire = Vec::new();
        for (kind, payload) in &frames {
            wire.extend_from_slice(&encode_frame(*kind, payload));
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.push(piece);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(frame);
            }
        }
        prop_assert_eq!(out, frames);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Kind bytes outside the protocol's space are rejected at the header
    /// (a random kind with a random under-cap length used to stall the
    /// decoder until the bogus length was "satisfied").
    #[test]
    fn unknown_kinds_rejected_at_header(
        kind in any::<u8>().prop_filter("outside kind space", |k| !(K_HELLO..=K_DATA_BATCH).contains(k)),
        len in 0u32..=(MAX_FRAME_LEN as u32),
    ) {
        let mut wire = vec![kind];
        wire.extend_from_slice(&len.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        prop_assert!(dec.next_frame().is_err());
    }

    /// Hello decoding is total on arbitrary bytes.
    #[test]
    fn hello_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Hello::decode(&bytes);
    }

    /// Busy decoding is total on arbitrary bytes.
    #[test]
    fn busy_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Busy::decode(&bytes);
    }

    /// Every truncation and every extension of a valid hello is a typed
    /// error — the payload is fixed-width, and nothing shorter or longer
    /// may parse (or allocate beyond the slice it was handed).
    #[test]
    fn hello_wrong_lengths_rejected(hello in any_hello(), cut in 0usize..HELLO_LEN, pad in 1usize..16) {
        let wire = hello.encode();
        prop_assert_eq!(wire.len(), HELLO_LEN);
        prop_assert!(Hello::decode(&wire[..cut]).is_err(), "truncation to {} parsed", cut);
        let mut long = wire.clone();
        long.extend(std::iter::repeat(0u8).take(pad));
        prop_assert!(Hello::decode(&long).is_err(), "oversize to {} parsed", long.len());
    }

    /// Same for busy: only the exact fixed width parses.
    #[test]
    fn busy_wrong_lengths_rejected(retry in any::<u64>(), cut in 0usize..BUSY_LEN, pad in 1usize..16) {
        let wire = Busy { retry_after_ms: retry }.encode();
        prop_assert_eq!(wire.len(), BUSY_LEN);
        prop_assert!(Busy::decode(&wire[..cut]).is_err(), "truncation to {} parsed", cut);
        let mut long = wire.clone();
        long.extend(std::iter::repeat(0u8).take(pad));
        prop_assert!(Busy::decode(&long).is_err(), "oversize to {} parsed", long.len());
    }

    /// A hello whose role byte is mutated off the wire enum is a typed
    /// decode error, and a mutated-but-valid role fails `verify` against
    /// the expected role. Nothing panics either way.
    #[test]
    fn hello_role_mutations_rejected(hello in any_hello(), role_byte in any::<u8>()) {
        let mut wire = hello.encode();
        wire[6] = role_byte;
        match Hello::decode(&wire) {
            Err(_) => {} // off-enum byte: rejected at decode
            Ok(decoded) => {
                // Any valid role byte that is *not* the expected role must
                // fail verification; the expected role must roundtrip.
                let check = decoded.verify(hello.role, decoded.backend, decoded.fingerprint);
                if decoded.role == hello.role && decoded.version == NET_VERSION {
                    prop_assert!(check.is_ok());
                } else {
                    prop_assert!(check.is_err());
                }
            }
        }
    }

    /// A hello from a different protocol version decodes (the bytes are
    /// well-formed) but never verifies — version skew is caught before any
    /// session state is built.
    #[test]
    fn hello_version_mutations_fail_verify(hello in any_hello(), version in any::<u16>()) {
        let mutated = Hello { version, ..hello };
        let decoded = Hello::decode(&mutated.encode()).expect("well-formed bytes decode");
        prop_assert_eq!(decoded, mutated);
        let check = decoded.verify(hello.role, hello.backend, hello.fingerprint);
        if version == NET_VERSION {
            prop_assert!(check.is_ok());
        } else {
            prop_assert!(check.is_err());
        }
    }

    /// Busy payloads with mutated magic are typed errors.
    #[test]
    fn busy_magic_mutations_rejected(retry in any::<u64>(), byte in 0usize..4, val in any::<u8>()) {
        let mut wire = Busy { retry_after_ms: retry }.encode();
        prop_assume!(wire[byte] != val);
        wire[byte] = val;
        prop_assert!(Busy::decode(&wire).is_err());
    }

    /// The frame overhead constant is exact for every payload size tried.
    #[test]
    fn frame_overhead_is_exact((kind, payload) in encoded_frame()) {
        prop_assert_eq!(encode_frame(kind, &payload).len(), FRAME_OVERHEAD + payload.len());
    }
}
