//! # pprl-runtime — stdlib-only scoped parallelism
//!
//! A minimal work-queue executor on `std::thread::scope`. The dependency
//! policy (D001) keeps external executors such as rayon out of the
//! math/crypto crates, so the pipeline's parallel paths share this one
//! primitive instead.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism of results.** [`par_map`] returns results in *item
//!    order*, independent of how the work-queue interleaved them across
//!    workers. Callers that fold results in order therefore produce
//!    byte-identical output to a sequential loop over the same items.
//! 2. **No silent loss.** A panicking work item propagates out of the
//!    call (via the scope join), exactly as it would from a sequential
//!    loop — results are never partially dropped.
//! 3. **Cheap dispatch.** Work items are claimed with a single
//!    `fetch_add` on a shared atomic index; there is no channel, no
//!    per-item allocation, and no locking on the hot path.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested worker count: `None` means "use the machine",
/// an explicit request is clamped to at least one worker.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` on up to `threads` workers, returning results
/// in item order. With `threads <= 1` (or fewer than two items) this is
/// a plain sequential loop — the legacy path, bit-for-bit.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_init(items, threads, |_worker| (), move |(), i, item| f(i, item))
}

/// [`par_map`] with per-worker state: `init(worker_index)` runs once on
/// each worker before it claims items, and the state is threaded through
/// every item that worker processes. Use this when each worker needs its
/// own session, RNG, or scratch buffers.
pub fn par_map_init<T, U, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers <= 1 {
        let mut state = init(0);
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, U)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let next = &next;
            let init = &init;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut state = init(w);
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else {
                        break;
                    };
                    local.push((i, f(&mut state, i, item)));
                }
                local
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => collected.extend(local),
                // A worker panicked: re-raise on the caller, exactly as a
                // sequential loop would have.
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });

    collected.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), items.len());
    collected.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_keep_item_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1usize, 2, 3, 4, 8, 64, 1000] {
            let got = par_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let got: Vec<u32> = par_map(&[] as &[u32], 8, |_, &x| x);
        assert!(got.is_empty());
        assert_eq!(par_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_is_claimed_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let got = par_map(&items, 7, |i, &x| {
            hits.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        assert_eq!(got.len(), 500);
    }

    #[test]
    fn per_worker_state_is_initialized_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        let got = par_map_init(
            &items,
            4,
            |w| {
                inits.fetch_add(1, Ordering::Relaxed);
                w
            },
            |state, _, &x| (*state, x),
        );
        let n = inits.load(Ordering::Relaxed);
        assert!(n >= 1 && n <= 4, "one init per spawned worker, got {n}");
        // Values survive in order regardless of which worker ran them.
        let vals: Vec<u32> = got.iter().map(|&(_, x)| x).collect();
        assert_eq!(vals, items);
    }

    #[test]
    fn sequential_fallback_uses_one_state() {
        let items = [1u32, 2, 3];
        let got = par_map_init(
            &items,
            1,
            |_| 0u32,
            |acc, _, &x| {
                *acc += x;
                *acc
            },
        );
        assert_eq!(got, vec![1, 3, 6], "single running state in order");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..32).collect();
        par_map(&items, 4, |_, &x| {
            if x == 17 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn resolve_threads_defaults_and_clamps() {
        assert!(resolve_threads(None) >= 1);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(Some(6)), 6);
    }
}
