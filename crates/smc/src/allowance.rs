//! The SMC allowance: the participants' cryptographic budget.
//!
//! The paper expresses it "as a percentage of the number of all record
//! pairs, |D1| × |D2|" (§VI), with 1.5 % as the default and the
//! observation that ≈2.4 % suffices for 100 % recall at k = 32.

use serde::{Deserialize, Serialize};

/// Budget of SMC protocol invocations (one per record-pair comparison).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SmcAllowance {
    /// A fraction of `|R| · |S|` (the paper's formulation).
    Fraction(f64),
    /// An absolute number of record-pair comparisons.
    Pairs(u64),
    /// No limit: every unknown pair is compared (the pure-SMC tail case).
    Unlimited,
}

impl SmcAllowance {
    /// The paper's default: 1.5 % of all record pairs.
    pub fn paper_default() -> Self {
        SmcAllowance::Fraction(0.015)
    }

    /// Resolves the budget against the actual pair-space size.
    pub fn budget_pairs(&self, total_pairs: u64) -> u64 {
        match *self {
            SmcAllowance::Fraction(f) => {
                assert!((0.0..=1.0).contains(&f) && f.is_finite(), "bad fraction {f}");
                (f * total_pairs as f64).floor() as u64
            }
            SmcAllowance::Pairs(n) => n,
            SmcAllowance::Unlimited => u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_resolves_against_pair_space() {
        let a = SmcAllowance::Fraction(0.015);
        assert_eq!(a.budget_pairs(1_000_000), 15_000);
        assert_eq!(SmcAllowance::Fraction(0.0).budget_pairs(100), 0);
        assert_eq!(SmcAllowance::Fraction(1.0).budget_pairs(100), 100);
    }

    #[test]
    fn absolute_and_unlimited() {
        assert_eq!(SmcAllowance::Pairs(42).budget_pairs(7), 42);
        assert_eq!(SmcAllowance::Unlimited.budget_pairs(7), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "bad fraction")]
    fn out_of_range_fraction_panics() {
        SmcAllowance::Fraction(1.5).budget_pairs(10);
    }
}
