//! Serde-free binary codec for [`SmcSession`] snapshots.
//!
//! Checkpoints ride inside journal frames (already length-prefixed and
//! checksummed by `pprl-journal`) and inside `pprl-net` resume exchanges,
//! so the codec is a plain field-ordered little-endian layout with a
//! leading version byte — no self-description, no external dependencies.
//! The previous serde_json checkpoint payload tied crash recovery to a
//! JSON round-trip; this codec is the canonical format now, and the serde
//! derives on [`SmcSession`] remain only for human-readable debugging
//! exports.
//!
//! Layout (version 1, all integers little-endian):
//!
//! ```text
//! u8  version
//! u64 budget
//! u8  phase tag (0 ordered, 1 suppressed, 2 done) + phase fields
//! u64 invocations
//! u32 matched count, then (u32 ri, u32 si) each
//! u32 leftover count, then (u32 r_class, u32 s_class, u64 pairs, u64 skip)
//! u32 examined count, then (u32 r_class, u32 s_class, u64 pairs,
//!                           u64 examined, u64 matched)
//! u64 suppressed_total, u64 suppressed_examined, u64 suppressed_matched
//! 96B CostLedger (CostLedger::encode)
//! degradation: AbandonTally (2×u64), u32 declared count + pairs,
//!              retries_spent, faults_survived, FaultStats (6×u64),
//!              virtual_backoff_ms
//! u64 elapsed_ms
//! ```

use crate::executor::{
    AbandonTally, DegradationReport, ExaminedStats, LeftoverPair, SessionPhase, SmcSession,
};
use crate::SmcError;
use pprl_blocking::ClassPairRef;
use pprl_crypto::protocol::transport::FaultStats;
use pprl_crypto::CostLedger;

/// Codec version written by [`encode_session`].
pub const SESSION_CODEC_VERSION: u8 = 1;

const PHASE_ORDERED: u8 = 0;
const PHASE_SUPPRESSED: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Serializes a session snapshot with the versioned binary layout.
pub fn encode_session(session: &SmcSession) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + CostLedger::WIRE_LEN
            + session.matched_pairs.len() * 8
            + session.leftovers.len() * 24
            + session.examined.len() * 32
            + session.degradation.declared.len() * 8,
    );
    out.push(SESSION_CODEC_VERSION);
    put_u64(&mut out, session.budget);
    match session.phase {
        SessionPhase::Ordered {
            cursor,
            skip,
            matched,
        } => {
            out.push(PHASE_ORDERED);
            put_u32(&mut out, cursor);
            put_u64(&mut out, skip);
            put_u64(&mut out, matched);
        }
        SessionPhase::Suppressed { group, offset } => {
            out.push(PHASE_SUPPRESSED);
            out.push(group);
            put_u64(&mut out, offset);
        }
        SessionPhase::Done => out.push(PHASE_DONE),
    }
    put_u64(&mut out, session.invocations);
    put_u32(&mut out, session.matched_pairs.len() as u32);
    for &(ri, si) in &session.matched_pairs {
        put_u32(&mut out, ri);
        put_u32(&mut out, si);
    }
    put_u32(&mut out, session.leftovers.len() as u32);
    for l in &session.leftovers {
        put_class_pair(&mut out, &l.class_pair);
        put_u64(&mut out, l.skip);
    }
    put_u32(&mut out, session.examined.len() as u32);
    for e in &session.examined {
        put_class_pair(&mut out, &e.class_pair);
        put_u64(&mut out, e.examined);
        put_u64(&mut out, e.matched);
    }
    put_u64(&mut out, session.suppressed_total);
    put_u64(&mut out, session.suppressed_examined);
    put_u64(&mut out, session.suppressed_matched);
    out.extend_from_slice(&session.ledger.encode());
    let d = &session.degradation;
    put_u64(&mut out, d.abandoned.retry_exhausted);
    put_u64(&mut out, d.abandoned.deadline_expired);
    put_u32(&mut out, d.declared.len() as u32);
    for &(ri, si) in &d.declared {
        put_u32(&mut out, ri);
        put_u32(&mut out, si);
    }
    put_u64(&mut out, d.retries_spent);
    put_u64(&mut out, d.faults_survived);
    for f in [
        d.injected.dropped,
        d.injected.truncated,
        d.injected.bit_flipped,
        d.injected.duplicated,
        d.injected.reordered,
        d.injected.delayed,
    ] {
        put_u64(&mut out, f);
    }
    put_u64(&mut out, d.virtual_backoff_ms);
    put_u64(&mut out, session.elapsed_ms);
    out
}

/// Decodes a snapshot serialized by [`encode_session`]. Every length and
/// tag is validated; trailing bytes are rejected (a truncated or padded
/// checkpoint means the journal frame lied about its payload).
pub fn decode_session(data: &[u8]) -> Result<SmcSession, SmcError> {
    let mut r = Reader { data, pos: 0 };
    let version = r.u8()?;
    if version != SESSION_CODEC_VERSION {
        return Err(SmcError::SessionMismatch(format!(
            "session codec version {version}, expected {SESSION_CODEC_VERSION}"
        )));
    }
    let budget = r.u64()?;
    let phase = match r.u8()? {
        PHASE_ORDERED => SessionPhase::Ordered {
            cursor: r.u32()?,
            skip: r.u64()?,
            matched: r.u64()?,
        },
        PHASE_SUPPRESSED => SessionPhase::Suppressed {
            group: r.u8()?,
            offset: r.u64()?,
        },
        PHASE_DONE => SessionPhase::Done,
        tag => {
            return Err(SmcError::SessionMismatch(format!(
                "session codec: unknown phase tag {tag}"
            )))
        }
    };
    let invocations = r.u64()?;
    let matched_pairs = r.vec(|r| Ok((r.u32()?, r.u32()?)))?;
    let leftovers = r.vec(|r| {
        Ok(LeftoverPair {
            class_pair: r.class_pair()?,
            skip: r.u64()?,
        })
    })?;
    let examined = r.vec(|r| {
        Ok(ExaminedStats {
            class_pair: r.class_pair()?,
            examined: r.u64()?,
            matched: r.u64()?,
        })
    })?;
    let suppressed_total = r.u64()?;
    let suppressed_examined = r.u64()?;
    let suppressed_matched = r.u64()?;
    let ledger_bytes = r.take(CostLedger::WIRE_LEN)?;
    let ledger = CostLedger::decode(ledger_bytes)
        .ok_or_else(|| SmcError::SessionMismatch("session codec: bad ledger block".into()))?;
    let abandoned = AbandonTally {
        retry_exhausted: r.u64()?,
        deadline_expired: r.u64()?,
    };
    let declared = r.vec(|r| Ok((r.u32()?, r.u32()?)))?;
    let retries_spent = r.u64()?;
    let faults_survived = r.u64()?;
    let injected = FaultStats {
        dropped: r.u64()?,
        truncated: r.u64()?,
        bit_flipped: r.u64()?,
        duplicated: r.u64()?,
        reordered: r.u64()?,
        delayed: r.u64()?,
    };
    let virtual_backoff_ms = r.u64()?;
    let elapsed_ms = r.u64()?;
    if r.pos != r.data.len() {
        return Err(SmcError::SessionMismatch(format!(
            "session codec: {} trailing bytes",
            r.data.len() - r.pos
        )));
    }
    Ok(SmcSession {
        budget,
        phase,
        invocations,
        matched_pairs,
        leftovers,
        examined,
        suppressed_total,
        suppressed_examined,
        suppressed_matched,
        ledger,
        degradation: DegradationReport {
            abandoned,
            declared,
            retries_spent,
            faults_survived,
            injected,
            virtual_backoff_ms,
        },
        elapsed_ms,
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_class_pair(out: &mut Vec<u8>, cp: &ClassPairRef) {
    put_u32(out, cp.r_class);
    put_u32(out, cp.s_class);
    put_u64(out, cp.pairs);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SmcError> {
        let truncated = || SmcError::SessionMismatch("session codec: truncated".into());
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        let slice = self.data.get(self.pos..end).ok_or_else(truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SmcError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SmcError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().map_err(|_| {
            SmcError::SessionMismatch("session codec: truncated u32".into())
        })?))
    }

    fn u64(&mut self) -> Result<u64, SmcError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().map_err(|_| {
            SmcError::SessionMismatch("session codec: truncated u64".into())
        })?))
    }

    fn class_pair(&mut self) -> Result<ClassPairRef, SmcError> {
        Ok(ClassPairRef {
            r_class: self.u32()?,
            s_class: self.u32()?,
            pairs: self.u64()?,
        })
    }

    /// Length-prefixed vector; the count is sanity-capped by the bytes
    /// actually remaining so a corrupt count cannot over-allocate.
    fn vec<T>(
        &mut self,
        mut item: impl FnMut(&mut Self) -> Result<T, SmcError>,
    ) -> Result<Vec<T>, SmcError> {
        let count = self.u32()? as usize;
        if count > self.data.len().saturating_sub(self.pos) {
            return Err(SmcError::SessionMismatch(
                "session codec: count exceeds payload".into(),
            ));
        }
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(item(self)?);
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SmcSession {
        SmcSession {
            budget: 120,
            phase: SessionPhase::Suppressed { group: 1, offset: 9 },
            invocations: 41,
            matched_pairs: vec![(3, 7), (11, 2)],
            leftovers: vec![LeftoverPair {
                class_pair: ClassPairRef {
                    r_class: 4,
                    s_class: 5,
                    pairs: 20,
                },
                skip: 6,
            }],
            examined: vec![ExaminedStats {
                class_pair: ClassPairRef {
                    r_class: 1,
                    s_class: 2,
                    pairs: 12,
                },
                examined: 12,
                matched: 3,
            }],
            suppressed_total: 30,
            suppressed_examined: 10,
            suppressed_matched: 2,
            ledger: {
                let mut l = CostLedger::new();
                l.encryptions = 99;
                l.record_message(1234);
                l
            },
            degradation: DegradationReport {
                abandoned: AbandonTally {
                    retry_exhausted: 2,
                    deadline_expired: 1,
                },
                declared: vec![(8, 8)],
                retries_spent: 5,
                faults_survived: 4,
                injected: FaultStats {
                    dropped: 1,
                    truncated: 2,
                    bit_flipped: 3,
                    duplicated: 4,
                    reordered: 5,
                    delayed: 6,
                },
                virtual_backoff_ms: 77,
            },
            elapsed_ms: 1234,
        }
    }

    #[test]
    fn roundtrips_a_populated_session() {
        let session = sample();
        let bytes = encode_session(&session);
        assert_eq!(decode_session(&bytes).unwrap(), session);
    }

    #[test]
    fn roundtrips_every_phase() {
        let mut session = sample();
        for phase in [
            SessionPhase::Ordered {
                cursor: 3,
                skip: 14,
                matched: 2,
            },
            SessionPhase::Suppressed { group: 0, offset: 0 },
            SessionPhase::Done,
        ] {
            session.phase = phase;
            let bytes = encode_session(&session);
            assert_eq!(decode_session(&bytes).unwrap(), session);
        }
    }

    #[test]
    fn rejects_corruption() {
        let bytes = encode_session(&sample());
        // Truncation at every boundary short of the full payload.
        for cut in 0..bytes.len() {
            assert!(decode_session(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_session(&padded).is_err());
        // Wrong version byte.
        let mut wrong = bytes.clone();
        wrong[0] = SESSION_CODEC_VERSION + 1;
        assert!(decode_session(&wrong).is_err());
        // Unknown phase tag.
        let mut bad_phase = bytes;
        bad_phase[9] = 9;
        assert!(decode_session(&bad_phase).is_err());
    }

    #[test]
    fn oversized_count_is_rejected_without_allocating() {
        let mut bytes = encode_session(&sample());
        // matched_pairs count lives right after version(1) + budget(8) +
        // phase(1+1+8) + invocations(8) = offset 27 for the suppressed
        // sample phase.
        bytes[27..31].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_session(&bytes).is_err());
    }
}
