//! Pluggable per-pair comparison backends.
//!
//! The executor's deterministic pair walk decides *which* record pairs
//! are compared; this module decides *how*. Everything a backend may
//! touch is behind the [`Comparator`] trait: session setup (key
//! generation, key broadcast, channel attach), the per-pair probe, the
//! match decision, and the cost-ledger accounting for every byte the
//! exchange would move. The executor itself never mentions Paillier or
//! Bloom filters — it drives a `Box<dyn Comparator>`.
//!
//! Two families ship today:
//!
//! * **Paillier** — the paper's exact protocol (per-attribute or
//!   batched record-level, in-process, simulated-channel, or remote).
//!   Decisions are exact; throughput is bounded by modular
//!   exponentiation.
//! * **Bloom** ([`crates/bloom`](pprl_bloom)) — q-gram CLK encodings
//!   compared by Dice coefficient with optional ε-DP bit flipping.
//!   Decisions are approximate; throughput is bounded by hashing.
//!
//! The backend choice is *fingerprinted*: it is part of [`SmcMode`],
//! whose `Debug` rendering feeds the job fingerprint that the run
//! journal pins and the Hello handshake exchanges — and the handshake
//! additionally carries an explicit backend byte
//! ([`SmcMode::backend_code`]) so two parties that disagree refuse each
//! other with a typed error *before* the fingerprint comparison, not
//! with a generic drift message.
//!
//! Ledger contract (the invariant every backend upholds): a local
//! backend records exactly the messages and ack envelopes the
//! distributed deployment of the same mode records across all three
//! parties, so the single-process report and the merged three-process
//! report are byte-identical.

use crate::executor::{
    batch_encode, encode_attribute, ChannelConfig, CompareOutcome, RemoteParty, SmcMode,
};
use crate::SmcError;
use pprl_blocking::{records_match, AttrDistance, MatchingRule};
use pprl_bloom::wire as clk_wire;
use pprl_bloom::{blip_flip, dice_match, encode_fields, ClkParams, DiceCounts, SIDE_A, SIDE_B};
use pprl_crypto::paillier::Keypair;
use pprl_crypto::protocol::message::ProtocolMessage;
use pprl_crypto::protocol::retry::{ReliableLink, RetryPolicy};
use pprl_crypto::protocol::transport::{
    FaultStats, FaultyTransport, LocalTransport, PartyId, TransportError, ENVELOPE_OVERHEAD,
};
use pprl_crypto::protocol::{secure_threshold_match, DataHolder};
use pprl_crypto::CostLedger;
use pprl_data::{Record, Value};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Pair id reserved for the public-key broadcast.
pub(crate) const KEY_BROADCAST_PAIR_ID: u64 = 0;

/// Minimum retry budget for the key broadcast. Losing the broadcast kills
/// the whole session (no shared key ⇒ no degraded continuation), while a
/// lost record pair merely degrades recall — so session setup is allowed a
/// more generous budget than individual pairs.
pub(crate) const KEY_BROADCAST_MIN_RETRIES: u32 = 16;

/// Everything a backend may read about the job, borrowed per call so
/// backends stay plain data: the schema, the matching rule, the per-QID
/// normalization factors, and the QID projection.
pub struct CompareCtx<'a> {
    /// Schema shared by both data sets.
    pub schema: &'a pprl_data::Schema,
    /// Per-attribute distances and thresholds.
    pub rule: &'a MatchingRule,
    /// Per-QID normalization factors (1.0 for categorical attributes).
    pub norms: &'a [f64],
    /// Quasi-identifier attribute indices.
    pub qids: &'a [usize],
}

/// End-of-run backend accounting, surfaced on
/// [`SmcReport`](crate::SmcReport) and in the serve daemon's per-job
/// metrics dump.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComparatorStats {
    /// Backend family name (`"oracle"`, `"paillier"`, `"bloom"`).
    pub backend: &'static str,
    /// Record pairs the session charged against the allowance.
    pub pairs_compared: u64,
    /// CLK filter bits exchanged (both directions; 0 off-bloom). Live
    /// tally: pairs replayed from a journal are not re-counted.
    pub clk_bits_exchanged: u64,
    /// DP bit flips applied to exchanged filters (0 off-bloom or with
    /// ε = 0). Live tally, like `clk_bits_exchanged`.
    pub dp_flips: u64,
}

/// A per-pair comparison backend: setup, probe, decision, accounting.
///
/// `Send + Sync` so forked instances can ride the parallel executor's
/// scoped workers.
pub trait Comparator: Send + Sync {
    /// Stable backend family name for reports, metrics, and handshakes.
    fn backend_name(&self) -> &'static str;

    /// Compares one record pair, recording its full wire cost into
    /// `ledger`. `ri`/`si` are the pair's row indices — the keys of any
    /// per-pair deterministic randomness (DP flip streams).
    fn compare(
        &mut self,
        ctx: &CompareCtx<'_>,
        ri: u32,
        si: u32,
        r: &Record,
        s: &Record,
        ledger: &mut CostLedger,
    ) -> Result<CompareOutcome, SmcError>;

    /// An independent instance for parallel worker `worker`, or `None`
    /// when the backend is inherently sequential (link-sequenced or
    /// keeping live counters the merge would lose).
    fn fork(&self, worker: u64) -> Option<Box<dyn Comparator>> {
        let _ = worker;
        None
    }

    /// Whether [`fork`](Self::fork) can succeed — gates the parallel
    /// executor without constructing a throwaway instance.
    fn forkable(&self) -> bool {
        false
    }

    /// Converts this backend into its networked counterpart: performs
    /// whatever session setup the wire protocol needs (the Paillier key
    /// broadcast; nothing for CLK) and returns the backend that will
    /// drive the remote exchange. Backends without a wire protocol
    /// refuse.
    fn connect_remote(
        &mut self,
        party: Box<dyn RemoteParty>,
        ledger: &mut CostLedger,
    ) -> Result<Box<dyn Comparator>, SmcError> {
        let _ = (party, ledger);
        Err(SmcError::Internal(
            "this backend has no networked wire protocol",
        ))
    }

    /// Pre-computes encryption randomizers where the backend has any;
    /// returns whether a pool was attached.
    fn prefill_randomizers(&mut self, count: usize, threads: usize, seed: u64) -> bool {
        let _ = (count, threads, seed);
        false
    }

    /// Injected-fault tally since the last harvest (`None` off-transport).
    fn take_fault_stats(&mut self) -> Option<FaultStats> {
        None
    }

    /// Virtual backoff accumulated since the last harvest.
    fn take_virtual_backoff_ms(&mut self) -> u64 {
        0
    }

    /// Live `(clk_bits_exchanged, dp_flips)` counters; zeros off-bloom.
    fn wire_counters(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Builds the backend for `mode`, mirroring the historical mode ×
/// channel dispatch exactly (so every pre-trait configuration constructs
/// the same backend state it always did).
pub(crate) fn build(
    mode: SmcMode,
    channel: Option<ChannelConfig>,
    rule: &MatchingRule,
    ledger: &mut CostLedger,
    warm: Option<&Keypair>,
) -> Result<Box<dyn Comparator>, SmcError> {
    // A warm keypair skips the prime search but leaves the backend
    // RNG freshly seeded instead of post-generation, so encryption
    // randomness differs from a cold start. Decisions, message sizes,
    // and therefore the cost ledger are randomness-independent.
    let fresh = |warm: Option<&Keypair>, modulus_bits: usize, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = match warm {
            Some(k) => k.clone(),
            None => Keypair::generate(&mut rng, modulus_bits),
        };
        (keys, rng)
    };
    match mode {
        SmcMode::Oracle => Ok(Box::new(OracleComparator)),
        SmcMode::Paillier { modulus_bits, seed }
        | SmcMode::PaillierBatched {
            modulus_bits, seed, ..
        } => {
            // The integer protocol cannot evaluate edit distance.
            if rule.distances.contains(&AttrDistance::NormalizedEdit) {
                return Err(SmcError::UnsupportedDistance("NormalizedEdit"));
            }
            match (mode, channel) {
                (SmcMode::PaillierBatched { pack, .. }, Some(ch)) => Ok(Box::new(
                    TransportedPaillier::connect(modulus_bits, seed, pack, ch, ledger)?,
                )),
                (SmcMode::PaillierBatched { pack, .. }, None) => {
                    let (keys, rng) = fresh(warm, modulus_bits, seed);
                    Ok(Box::new(BatchedPaillier { keys, rng, pack }))
                }
                _ => {
                    let (keys, rng) = fresh(warm, modulus_bits, seed);
                    Ok(Box::new(PerAttributePaillier { keys, rng }))
                }
            }
        }
        SmcMode::Bloom { params } => {
            params.validate().map_err(SmcError::Internal)?;
            if channel.is_some() {
                return Err(SmcError::Internal(
                    "the bloom backend runs over real sockets or in-process; \
                     it has no simulated-channel mode",
                ));
            }
            Ok(Box::new(ClkComparator {
                params,
                bits: 0,
                flips: 0,
            }))
        }
    }
}

/// Canonicalizes a record's QID projection into the strings the CLK
/// q-grammer consumes: categorical leaves as decimal, continuous values
/// as fixed-point thousandths. Shared by the local backend and the
/// data-holder processes, so every party grams identical text.
pub fn clk_record_fields(qids: &[usize], rec: &Record) -> Vec<String> {
    qids.iter()
        .map(|&q| match rec.value(q) {
            Value::Cat(c) => c.to_string(),
            Value::Num(v) => (((v * 1000.0).round()) as i64).to_string(),
        })
        .collect()
}

/// Encodes one side's CLK for a pair: canonicalize, gram, hash, then
/// apply the side/row-keyed DP flips. Returns the filter and its flip
/// count. `side` is [`SIDE_A`] for R-rows, [`SIDE_B`] for S-rows.
pub fn clk_encode_side(
    params: &ClkParams,
    qids: &[usize],
    rec: &Record,
    side: u8,
    row: u32,
) -> (pprl_bloom::Clk, u32) {
    let fields = clk_record_fields(qids, rec);
    let mut clk = encode_fields(params, &fields);
    let flips = blip_flip(&mut clk, params, side, row);
    (clk, flips)
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// Plaintext oracle: the protocol's exact predicate, free of crypto.
pub(crate) struct OracleComparator;

impl Comparator for OracleComparator {
    fn backend_name(&self) -> &'static str {
        "oracle"
    }

    fn compare(
        &mut self,
        ctx: &CompareCtx<'_>,
        _ri: u32,
        _si: u32,
        r: &Record,
        s: &Record,
        _ledger: &mut CostLedger,
    ) -> Result<CompareOutcome, SmcError> {
        Ok(CompareOutcome::Decided(records_match(
            ctx.schema, ctx.qids, ctx.rule, r, s,
        )))
    }

    fn fork(&self, _worker: u64) -> Option<Box<dyn Comparator>> {
        Some(Box::new(OracleComparator))
    }

    fn forkable(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Paillier (in-process)
// ---------------------------------------------------------------------------

/// Re-derives a worker RNG from a backend's stream mixed with the worker
/// index, so forked workers draw distinct encryption randomness.
fn fork_rng(rng: &StdRng, worker: u64) -> StdRng {
    let mut probe = rng.clone();
    let base = probe.next_u64();
    let mix = worker.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    StdRng::seed_from_u64(base ^ mix)
}

/// Per-attribute masked comparisons with early exit on the first failing
/// attribute (fewest exponentiations).
pub(crate) struct PerAttributePaillier {
    keys: Keypair,
    rng: StdRng,
}

impl Comparator for PerAttributePaillier {
    fn backend_name(&self) -> &'static str {
        "paillier"
    }

    fn compare(
        &mut self,
        ctx: &CompareCtx<'_>,
        _ri: u32,
        _si: u32,
        r: &Record,
        s: &Record,
        ledger: &mut CostLedger,
    ) -> Result<CompareOutcome, SmcError> {
        for (pos, &q) in ctx.qids.iter().enumerate() {
            let (a, b, t) = encode_attribute(ctx.rule, pos, r.value(q), s.value(q), ctx.norms)?;
            if t == u64::MAX {
                continue; // θ ≥ 1: attribute can never fail
            }
            let ok = secure_threshold_match(
                self.keys.public(),
                self.keys.private(),
                a,
                b,
                t,
                &mut self.rng,
                ledger,
            )?;
            if !ok {
                return Ok(CompareOutcome::Decided(false));
            }
        }
        Ok(CompareOutcome::Decided(true))
    }

    fn fork(&self, worker: u64) -> Option<Box<dyn Comparator>> {
        Some(Box::new(PerAttributePaillier {
            keys: self.keys.clone(),
            rng: fork_rng(&self.rng, worker),
        }))
    }

    fn forkable(&self) -> bool {
        true
    }

    fn prefill_randomizers(&mut self, count: usize, threads: usize, seed: u64) -> bool {
        let pool = pprl_crypto::RandomizerPool::prefill(self.keys.public(), count, threads, seed);
        self.keys.attach_pool(pool).is_ok()
    }
}

/// Batched record-level exchange: exactly two framed messages per
/// non-trivial record pair.
pub(crate) struct BatchedPaillier {
    keys: Keypair,
    rng: StdRng,
    pack: bool,
}

impl Comparator for BatchedPaillier {
    fn backend_name(&self) -> &'static str {
        "paillier"
    }

    fn compare(
        &mut self,
        ctx: &CompareCtx<'_>,
        _ri: u32,
        _si: u32,
        r: &Record,
        s: &Record,
        ledger: &mut CostLedger,
    ) -> Result<CompareOutcome, SmcError> {
        let Some((a_vals, b_vals, thresholds)) =
            batch_encode(ctx.rule, ctx.qids, r, s, ctx.norms)?
        else {
            return Ok(CompareOutcome::Decided(true));
        };
        use pprl_crypto::protocol::pack::{
            bob_record_message_packed, querier_reveal_record_packed, validate_packable_values,
        };
        use pprl_crypto::protocol::record::{
            alice_record_message, bob_record_message, querier_reveal_record,
        };
        if self.pack {
            // Alice's own-value bound check (Bob cannot verify it).
            validate_packable_values(&a_vals)?;
        }
        let m_alice = alice_record_message(self.keys.public(), &a_vals, &mut self.rng, ledger)?;
        let decided = if self.pack {
            let m_bob = bob_record_message_packed(
                self.keys.public(),
                &m_alice,
                &b_vals,
                &thresholds,
                &mut self.rng,
                ledger,
            )?;
            querier_reveal_record_packed(self.keys.private(), &m_bob, ledger)?
        } else {
            let m_bob = bob_record_message(
                self.keys.public(),
                &m_alice,
                &b_vals,
                &thresholds,
                &mut self.rng,
                ledger,
            )?;
            querier_reveal_record(self.keys.private(), &m_bob, ledger)?
        };
        Ok(CompareOutcome::Decided(decided))
    }

    fn fork(&self, worker: u64) -> Option<Box<dyn Comparator>> {
        Some(Box::new(BatchedPaillier {
            keys: self.keys.clone(),
            rng: fork_rng(&self.rng, worker),
            pack: self.pack,
        }))
    }

    fn forkable(&self) -> bool {
        true
    }

    fn prefill_randomizers(&mut self, count: usize, threads: usize, seed: u64) -> bool {
        let pool = pprl_crypto::RandomizerPool::prefill(self.keys.public(), count, threads, seed);
        self.keys.attach_pool(pool).is_ok()
    }

    fn connect_remote(
        &mut self,
        mut party: Box<dyn RemoteParty>,
        ledger: &mut CostLedger,
    ) -> Result<Box<dyn Comparator>, SmcError> {
        let key_msg = ProtocolMessage::PublicKey {
            n: self.keys.public().n().clone(),
        }
        .encode()
        .to_vec();
        let next_pair_id = party.resume_pair_watermark();
        party.broadcast_key(&key_msg, ledger)?;
        Ok(Box::new(RemotePaillier {
            keys: self.keys.clone(),
            party,
            next_pair_id,
            pack: self.pack,
        }))
    }
}

// ---------------------------------------------------------------------------
// Paillier (simulated channel)
// ---------------------------------------------------------------------------

/// The batched protocol run over an explicit simulated network: the key
/// broadcast and both per-pair messages cross a [`ReliableLink`] over a
/// [`FaultyTransport`].
pub(crate) struct TransportedPaillier {
    keys: Keypair,
    rng: StdRng,
    link: ReliableLink<FaultyTransport<LocalTransport>>,
    alice: DataHolder,
    bob: DataHolder,
    next_pair_id: u64,
    /// Slot-packed replies from the simulated Bob.
    pack: bool,
}

impl TransportedPaillier {
    fn connect(
        modulus_bits: usize,
        seed: u64,
        pack: bool,
        channel: ChannelConfig,
        ledger: &mut CostLedger,
    ) -> Result<Self, SmcError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = Keypair::generate(&mut rng, modulus_bits);
        let transport = FaultyTransport::new(LocalTransport::new(), channel.faults, channel.seed);
        let mut link = ReliableLink::new(
            transport,
            channel.retry,
            channel.seed ^ 0x9e37_79b9_7f4a_7c15,
        );
        let broadcast_policy = RetryPolicy {
            max_retries: channel.retry.max_retries.max(KEY_BROADCAST_MIN_RETRIES),
            ..channel.retry
        };
        let key_msg = ProtocolMessage::PublicKey {
            n: keys.public().n().clone(),
        }
        .encode()
        .to_vec();
        let broadcast = |link: &mut ReliableLink<FaultyTransport<LocalTransport>>,
                         ledger: &mut CostLedger,
                         party: PartyId|
         -> Result<DataHolder, SmcError> {
            ledger.record_message(key_msg.len());
            let delivered = link
                .deliver_with(
                    broadcast_policy,
                    PartyId::Querier,
                    party,
                    KEY_BROADCAST_PAIR_ID,
                    key_msg.clone(),
                    ledger,
                )
                .map_err(SmcError::Transport)?;
            Ok(DataHolder::from_key_message(&delivered)?)
        };
        let alice = broadcast(&mut link, ledger, PartyId::Alice)?;
        let bob = broadcast(&mut link, ledger, PartyId::Bob)?;
        Ok(TransportedPaillier {
            keys,
            rng,
            link,
            alice,
            bob,
            next_pair_id: KEY_BROADCAST_PAIR_ID,
            pack,
        })
    }
}

impl Comparator for TransportedPaillier {
    fn backend_name(&self) -> &'static str {
        "paillier"
    }

    fn compare(
        &mut self,
        ctx: &CompareCtx<'_>,
        _ri: u32,
        _si: u32,
        r: &Record,
        s: &Record,
        ledger: &mut CostLedger,
    ) -> Result<CompareOutcome, SmcError> {
        let Some((a_vals, b_vals, thresholds)) =
            batch_encode(ctx.rule, ctx.qids, r, s, ctx.norms)?
        else {
            return Ok(CompareOutcome::Decided(true));
        };
        use pprl_crypto::protocol::pack::{
            bob_record_message_packed, querier_reveal_record_packed, validate_packable_values,
        };
        use pprl_crypto::protocol::record::{
            alice_record_message, bob_record_message, querier_reveal_record,
        };
        if self.pack {
            validate_packable_values(&a_vals)?;
        }
        self.next_pair_id += 1;
        let pair_id = self.next_pair_id;
        let m_alice =
            alice_record_message(self.alice.public_key(), &a_vals, &mut self.rng, ledger)?;
        let delivered = match self
            .link
            .deliver(PartyId::Alice, PartyId::Bob, pair_id, m_alice, ledger)
        {
            Ok(bytes) => bytes,
            Err(TransportError::RetriesExhausted { .. }) => return Ok(CompareOutcome::Abandoned),
        };
        // The envelope checksum guarantees the payload arrived intact, so
        // a decode failure here is a real protocol bug — propagate it
        // rather than degrade.
        let m_bob = if self.pack {
            bob_record_message_packed(
                self.bob.public_key(),
                &delivered,
                &b_vals,
                &thresholds,
                &mut self.rng,
                ledger,
            )?
        } else {
            bob_record_message(
                self.bob.public_key(),
                &delivered,
                &b_vals,
                &thresholds,
                &mut self.rng,
                ledger,
            )?
        };
        let delivered = match self
            .link
            .deliver(PartyId::Bob, PartyId::Querier, pair_id, m_bob, ledger)
        {
            Ok(bytes) => bytes,
            Err(TransportError::RetriesExhausted { .. }) => return Ok(CompareOutcome::Abandoned),
        };
        let decided = if self.pack {
            querier_reveal_record_packed(self.keys.private(), &delivered, ledger)?
        } else {
            querier_reveal_record(self.keys.private(), &delivered, ledger)?
        };
        Ok(CompareOutcome::Decided(decided))
    }

    fn take_fault_stats(&mut self) -> Option<FaultStats> {
        Some(self.link.transport_mut().take_stats())
    }

    fn take_virtual_backoff_ms(&mut self) -> u64 {
        self.link.take_virtual_elapsed_ms()
    }
}

// ---------------------------------------------------------------------------
// Paillier (remote holders)
// ---------------------------------------------------------------------------

/// Querier-side state of a networked session: only the key pair and the
/// non-trivial-pair counter live here — ciphertext production happens in
/// the remote holder processes.
pub(crate) struct RemotePaillier {
    keys: Keypair,
    party: Box<dyn RemoteParty>,
    next_pair_id: u64,
    /// Whether the holders send slot-packed replies (the fingerprint
    /// guarantees all three parties agree on this).
    pack: bool,
}

impl Comparator for RemotePaillier {
    fn backend_name(&self) -> &'static str {
        "paillier"
    }

    fn compare(
        &mut self,
        ctx: &CompareCtx<'_>,
        _ri: u32,
        _si: u32,
        r: &Record,
        s: &Record,
        ledger: &mut CostLedger,
    ) -> Result<CompareOutcome, SmcError> {
        // The holders replicate this same deterministic walk and
        // encoding; a trivial pair is decided locally on every side
        // without a single byte crossing the wire.
        if batch_encode(ctx.rule, ctx.qids, r, s, ctx.norms)?.is_none() {
            return Ok(CompareOutcome::Decided(true));
        }
        use pprl_crypto::protocol::pack::querier_reveal_record_packed;
        use pprl_crypto::protocol::record::querier_reveal_record;
        self.next_pair_id += 1;
        let pair_id = self.next_pair_id;
        match self.party.bob_message(pair_id, ledger)? {
            None => Ok(CompareOutcome::Abandoned),
            Some(m_bob) => {
                let decided = if self.pack {
                    querier_reveal_record_packed(self.keys.private(), &m_bob, ledger)?
                } else {
                    querier_reveal_record(self.keys.private(), &m_bob, ledger)?
                };
                Ok(CompareOutcome::Decided(decided))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bloom / CLK
// ---------------------------------------------------------------------------

/// In-process CLK backend: encodes both sides locally and mirrors, byte
/// for byte, the ledger entries the three-process deployment records —
/// Alice's filter message, Bob's journaled ack of it, Bob's Dice-tally
/// message, and the querier's journaled ack of that.
pub(crate) struct ClkComparator {
    params: ClkParams,
    bits: u64,
    flips: u64,
}

impl Comparator for ClkComparator {
    fn backend_name(&self) -> &'static str {
        "bloom"
    }

    fn compare(
        &mut self,
        ctx: &CompareCtx<'_>,
        ri: u32,
        si: u32,
        r: &Record,
        s: &Record,
        ledger: &mut CostLedger,
    ) -> Result<CompareOutcome, SmcError> {
        let p = self.params;
        let (clk_a, flips_a) = clk_encode_side(&p, ctx.qids, r, SIDE_A, ri);
        let (clk_b, flips_b) = clk_encode_side(&p, ctx.qids, s, SIDE_B, si);
        // Alice → Bob: the filter message, acked after Bob journals it.
        let clk_msg = clk_wire::encode_clk(&clk_a, flips_a);
        ledger.record_message(clk_msg.len());
        ledger.record_message(ENVELOPE_OVERHEAD);
        let counts = DiceCounts::of(&clk_a, &clk_b)
            .ok_or(SmcError::Internal("clk filter lengths diverged"))?;
        // Bob → querier: the tallies, acked after the querier journals.
        let dice_msg = clk_wire::encode_dice(&clk_wire::DiceMsg {
            a_ones: counts.a_ones,
            b_ones: counts.b_ones,
            common: counts.common,
            flips: flips_a.saturating_add(flips_b),
        });
        ledger.record_message(dice_msg.len());
        ledger.record_message(ENVELOPE_OVERHEAD);
        self.bits += 2 * u64::from(p.filter_len);
        self.flips += u64::from(flips_a) + u64::from(flips_b);
        Ok(CompareOutcome::Decided(dice_match(
            &counts,
            p.threshold_millis,
        )))
    }

    // Deliberately not forkable: the live bit/flip counters feed the
    // metrics dump, and parallel forks would drop their tallies on the
    // floor. Hashing is cheap enough that sequential is never the
    // bottleneck (the walk itself dominates).

    fn connect_remote(
        &mut self,
        party: Box<dyn RemoteParty>,
        _ledger: &mut CostLedger,
    ) -> Result<Box<dyn Comparator>, SmcError> {
        // No key material to broadcast: the CLK parameters are part of
        // the fingerprinted config every party already holds.
        let next_pair_id = party.resume_pair_watermark();
        Ok(Box::new(RemoteClk {
            params: self.params,
            party,
            next_pair_id,
            bits: self.bits,
            flips: self.flips,
        }))
    }

    fn wire_counters(&self) -> (u64, u64) {
        (self.bits, self.flips)
    }
}

/// Querier-side CLK backend of a networked session: Bob ships Dice
/// tallies; the querier never sees either filter.
pub(crate) struct RemoteClk {
    params: ClkParams,
    party: Box<dyn RemoteParty>,
    next_pair_id: u64,
    bits: u64,
    flips: u64,
}

impl Comparator for RemoteClk {
    fn backend_name(&self) -> &'static str {
        "bloom"
    }

    fn compare(
        &mut self,
        _ctx: &CompareCtx<'_>,
        _ri: u32,
        _si: u32,
        _r: &Record,
        _s: &Record,
        ledger: &mut CostLedger,
    ) -> Result<CompareOutcome, SmcError> {
        // Every CLK pair is non-trivial (there is no attribute-level
        // shortcut), so the pair-id stream has no gaps on any party.
        self.next_pair_id += 1;
        let pair_id = self.next_pair_id;
        match self.party.bob_message(pair_id, ledger)? {
            None => Ok(CompareOutcome::Abandoned),
            Some(m_bob) => {
                let msg = clk_wire::decode_dice(&m_bob, self.params.filter_len).map_err(|e| {
                    SmcError::SessionMismatch(format!("Bob's dice message rejected: {e}"))
                })?;
                self.bits += 2 * u64::from(self.params.filter_len);
                self.flips += u64::from(msg.flips);
                let counts = DiceCounts {
                    a_ones: msg.a_ones,
                    b_ones: msg.b_ones,
                    common: msg.common,
                };
                Ok(CompareOutcome::Decided(dice_match(
                    &counts,
                    self.params.threshold_millis,
                )))
            }
        }
    }

    fn wire_counters(&self) -> (u64, u64) {
        (self.bits, self.flips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_data::synth::{generate, SynthConfig};

    #[test]
    fn clk_fields_canonicalize_both_value_kinds() {
        let data = generate(&SynthConfig {
            records: 4,
            seed: 1,
        });
        let rec = &data.records()[0];
        let qids: Vec<usize> = (0..data.schema().arity()).collect();
        let fields = clk_record_fields(&qids, rec);
        assert_eq!(fields.len(), qids.len());
        for f in &fields {
            assert!(f.chars().all(|c| c.is_ascii_digit() || c == '-'), "{f}");
        }
    }

    #[test]
    fn clk_encode_side_is_side_and_row_keyed() {
        let data = generate(&SynthConfig {
            records: 4,
            seed: 1,
        });
        let rec = &data.records()[0];
        let qids: Vec<usize> = (0..3).collect();
        let mut params = ClkParams::paper_defaults(7);
        params.epsilon_millis = 2000;
        let (a0, _) = clk_encode_side(&params, &qids, rec, SIDE_A, 0);
        let (a0_again, _) = clk_encode_side(&params, &qids, rec, SIDE_A, 0);
        let (a1, _) = clk_encode_side(&params, &qids, rec, SIDE_A, 1);
        assert_eq!(a0, a0_again);
        assert_ne!(a0, a1, "row key must vary the DP noise");
    }
}
