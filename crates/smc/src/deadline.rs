//! Deadline budgeting: a wall-clock analogue of the SMC allowance.
//!
//! The paper's allowance (§V) caps *how many* unknown pairs the Paillier
//! protocol is spent on; a [`DeadlineBudget`] caps *how long*. When the
//! deadline expires mid-SMC, every remaining pair the allowance would
//! still have covered is *abandoned* instead of compared — decided by the
//! configured `LabelingStrategy` exactly like a retry-exhausted pair
//! (maximize-precision ⇒ non-match, so precision stays 1.0 by
//! construction) and tallied separately as
//! [`AbandonReason::DeadlineExpired`](crate::AbandonReason).
//!
//! Two clock models:
//! * [`DeadlineBudget::WallClockMs`] — a real deadline for production
//!   runs. Elapsed time persists across checkpoint/resume in
//!   `SmcSession::elapsed_ms`, so a crashed job cannot cheat its budget by
//!   restarting.
//! * [`DeadlineBudget::VirtualMs`] — a deterministic clock where each
//!   performed comparison costs a fixed virtual duration. Tests and
//!   journal replay use it so deadline behaviour is exactly reproducible.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Time budget for the SMC step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DeadlineBudget {
    /// No deadline: the allowance alone bounds the run.
    None,
    /// Real wall-clock budget in milliseconds, measured across the whole
    /// session (resumed time counts — the budget survives crashes).
    WallClockMs(u64),
    /// Deterministic virtual clock: each performed comparison advances
    /// virtual time by `cost_per_pair_ms`; the deadline expires once
    /// virtual time reaches `budget_ms`. Bit-reproducible, so resume ≡
    /// one-shot holds even for deadline-degraded runs.
    VirtualMs {
        /// Virtual budget in milliseconds.
        budget_ms: u64,
        /// Virtual cost charged per performed comparison.
        cost_per_pair_ms: u64,
    },
}

impl DeadlineBudget {
    /// True when no deadline is configured.
    pub fn is_none(&self) -> bool {
        matches!(self, DeadlineBudget::None)
    }
}

/// Internal clock that tracks spend against a [`DeadlineBudget`].
///
/// `base_ms` carries elapsed time restored from a checkpoint, wall time
/// accrues from `started`, and virtual time accrues per charged pair —
/// only the model selected by the budget contributes to expiry.
#[derive(Debug)]
pub(crate) struct DeadlineClock {
    budget: DeadlineBudget,
    base_ms: u64,
    virtual_ms: u64,
    started: Instant,
}

impl DeadlineClock {
    pub(crate) fn new(budget: DeadlineBudget, base_ms: u64) -> Self {
        DeadlineClock {
            budget,
            base_ms,
            virtual_ms: 0,
            started: Instant::now(),
        }
    }

    /// Total elapsed milliseconds under this budget's clock model,
    /// including time restored from a checkpoint.
    pub(crate) fn elapsed_ms(&self) -> u64 {
        let live = match self.budget {
            DeadlineBudget::WallClockMs(_) => self.started.elapsed().as_millis() as u64,
            _ => 0,
        };
        self.base_ms
            .saturating_add(self.virtual_ms)
            .saturating_add(live)
    }

    /// True once the budget is spent; pairs located after this point are
    /// abandoned, not compared.
    pub(crate) fn expired(&self) -> bool {
        match self.budget {
            DeadlineBudget::None => false,
            DeadlineBudget::WallClockMs(budget_ms) => self.elapsed_ms() >= budget_ms,
            DeadlineBudget::VirtualMs { budget_ms, .. } => self.elapsed_ms() >= budget_ms,
        }
    }

    /// True when no deadline is configured — the precondition for the
    /// parallel pair walk (deadline expiry is checked between pairs, a
    /// sequential notion that batched execution cannot honor mid-batch).
    pub(crate) fn is_unbounded(&self) -> bool {
        self.budget.is_none()
    }

    /// Charges the virtual cost of one performed comparison (no-op for
    /// the wall-clock and unbudgeted models).
    pub(crate) fn charge_pair(&mut self) {
        if let DeadlineBudget::VirtualMs {
            cost_per_pair_ms, ..
        } = self.budget
        {
            self.virtual_ms = self.virtual_ms.saturating_add(cost_per_pair_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbudgeted_clock_never_expires() {
        let mut c = DeadlineClock::new(DeadlineBudget::None, u64::MAX);
        c.charge_pair();
        assert!(!c.expired());
    }

    #[test]
    fn virtual_clock_expires_after_exact_pair_count() {
        let mut c = DeadlineClock::new(
            DeadlineBudget::VirtualMs {
                budget_ms: 10,
                cost_per_pair_ms: 3,
            },
            0,
        );
        for expected in [false, false, false, false] {
            assert_eq!(c.expired(), expected);
            c.charge_pair();
        }
        // 4 pairs × 3 ms = 12 ms ≥ 10 ms.
        assert!(c.expired());
        assert_eq!(c.elapsed_ms(), 12);
    }

    #[test]
    fn checkpointed_time_counts_against_the_budget() {
        let c = DeadlineClock::new(
            DeadlineBudget::VirtualMs {
                budget_ms: 10,
                cost_per_pair_ms: 1,
            },
            10,
        );
        assert!(c.expired(), "restored elapsed time alone expires the budget");
        let c = DeadlineClock::new(DeadlineBudget::WallClockMs(5), 5);
        assert!(c.expired());
    }
}
