//! Spends the SMC allowance on the ordered unknown class pairs.
//!
//! Record pairs are compared one by one, in deterministic row-major order
//! within each class pair; the class pair that straddles the budget is
//! consumed *partially* (its remaining record pairs join the leftovers).
//!
//! Two execution modes:
//! * [`SmcMode::Paillier`] — the real §V-A protocol: per attribute, a
//!   masked secure threshold comparison under a fresh Paillier key pair
//!   owned by the querying party.
//! * [`SmcMode::Oracle`] — plaintext evaluation of the *same* predicate.
//!   Because the SMC protocol computes the exact distance, the two modes
//!   return identical labels (enforced by `tests/` equivalence tests);
//!   sweeps use the oracle so that million-pair experiments finish.

use crate::allowance::SmcAllowance;
use crate::heuristics::{order_unknown, SelectionHeuristic};
use crate::strategy::LabelingStrategy;
use crate::SmcError;
use pprl_anon::AnonymizedView;
use pprl_blocking::{records_match, AttrDistance, ClassPairRef, MatchingRule};
use pprl_crypto::paillier::Keypair;
use pprl_crypto::protocol::secure_threshold_match;
use pprl_crypto::CostLedger;
use pprl_data::{DataSet, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed-point scale for continuous values entering the integer-only
/// Paillier protocol (documented quantization: 1/1000 of a unit).
const NUM_SCALE: f64 = 1000.0;

/// How unknown pairs are actually compared.
#[derive(Clone, Copy, Debug)]
pub enum SmcMode {
    /// Plaintext oracle, bit-identical to the protocol (for sweeps).
    Oracle,
    /// Real Paillier protocol, one masked comparison per attribute with
    /// early exit on the first failing attribute (fewest exponentiations).
    Paillier {
        /// Modulus bits for the querying party's key pair.
        modulus_bits: usize,
        /// RNG seed for keygen and encryption randomness.
        seed: u64,
    },
    /// Real Paillier protocol using the *batched record-level* wire
    /// exchange ([`pprl_crypto::protocol::record`]): exactly two framed
    /// messages per record pair, so the ledger's message/byte counts
    /// reflect the deployable protocol.
    PaillierBatched {
        /// Modulus bits for the querying party's key pair.
        modulus_bits: usize,
        /// RNG seed for keygen and encryption randomness.
        seed: u64,
    },
}

/// Configuration of the SMC step.
#[derive(Clone, Copy, Debug)]
pub struct SmcStep {
    /// Candidate ordering.
    pub heuristic: SelectionHeuristic,
    /// Budget.
    pub allowance: SmcAllowance,
    /// What happens to pairs the budget never reaches.
    pub strategy: LabelingStrategy,
    /// Oracle or real crypto.
    pub mode: SmcMode,
}

/// A class pair the budget only partially covered (or never reached):
/// `skip` record pairs (row-major order) were already examined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeftoverPair {
    /// The class pair.
    pub class_pair: ClassPairRef,
    /// Record pairs already consumed from it.
    pub skip: u64,
}

/// Per-class-pair statistics from the examined sample — training data for
/// §V-B's strategy-3 classifier.
#[derive(Clone, Copy, Debug)]
pub struct ExaminedStats {
    /// The class pair.
    pub class_pair: ClassPairRef,
    /// Record pairs examined (≤ `class_pair.pairs`).
    pub examined: u64,
    /// Of those, how many matched.
    pub matched: u64,
}

/// Outcome of the SMC step.
#[derive(Clone, Debug)]
pub struct SmcReport {
    /// Resolved budget in record pairs.
    pub budget: u64,
    /// Record-pair comparisons actually performed.
    pub invocations: u64,
    /// Record pairs `(row in R, row in S)` the SMC step labeled *match*.
    pub matched_pairs: Vec<(u32, u32)>,
    /// Class pairs (fully or partially) not examined.
    pub leftovers: Vec<LeftoverPair>,
    /// Stats per examined class pair.
    pub examined: Vec<ExaminedStats>,
    /// Pairs involving a suppressed record (DataFly): total in the input.
    pub suppressed_total: u64,
    /// Of those, how many the budget covered.
    pub suppressed_examined: u64,
    /// Of the examined suppressed pairs, how many matched.
    pub suppressed_matched: u64,
    /// Crypto cost accounting (all zeros in oracle mode except invocations).
    pub ledger: CostLedger,
}

impl SmcStep {
    /// Runs the SMC step over the blocking outcome's unknown class pairs.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        r_data: &DataSet,
        s_data: &DataSet,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
        unknown: &[ClassPairRef],
        rule: &MatchingRule,
        total_pairs: u64,
    ) -> Result<SmcReport, SmcError> {
        let ordered = order_unknown(r_view, s_view, unknown, rule, self.heuristic);
        let budget = self.allowance.budget_pairs(total_pairs);

        let mut comparer = Comparer::new(self.mode, r_data, r_view.qids(), rule)?;
        let mut report = SmcReport {
            budget,
            invocations: 0,
            matched_pairs: Vec::new(),
            leftovers: Vec::new(),
            examined: Vec::new(),
            suppressed_total: 0,
            suppressed_examined: 0,
            suppressed_matched: 0,
            ledger: CostLedger::new(),
        };

        let qids = r_view.qids();
        for pref in ordered {
            let remaining = budget - report.invocations;
            if remaining == 0 {
                report.leftovers.push(LeftoverPair {
                    class_pair: pref,
                    skip: 0,
                });
                continue;
            }
            let rc = &r_view.classes()[pref.r_class as usize];
            let sc = &s_view.classes()[pref.s_class as usize];
            let mut examined = 0u64;
            let mut matched = 0u64;
            'pairs: for &ri in &rc.rows {
                for &si in &sc.rows {
                    if examined == remaining {
                        break 'pairs;
                    }
                    let r = &r_data.records()[ri as usize];
                    let s = &s_data.records()[si as usize];
                    let is_match = comparer.compare(qids, r, s, &mut report.ledger)?;
                    examined += 1;
                    if is_match {
                        matched += 1;
                        report.matched_pairs.push((ri, si));
                    }
                }
            }
            report.invocations += examined;
            report.examined.push(ExaminedStats {
                class_pair: pref,
                examined,
                matched,
            });
            if examined < pref.pairs {
                report.leftovers.push(LeftoverPair {
                    class_pair: pref,
                    skip: examined,
                });
            }
        }

        // Pairs involving suppressed records (DataFly) carry no
        // generalization sequence, so no heuristic can rank them — they are
        // processed last, budget permitting, in deterministic row order:
        // suppressed-R × all-S, then covered-R × suppressed-S.
        let r_suppressed = r_view.suppressed();
        let s_suppressed = s_view.suppressed();
        let s_all: Vec<u32> = (0..s_data.len() as u32).collect();
        let r_covered: Vec<u32> = {
            let mut sup = vec![false; r_data.len()];
            for &row in r_suppressed {
                sup[row as usize] = true;
            }
            (0..r_data.len() as u32)
                .filter(|&row| !sup[row as usize])
                .collect()
        };
        report.suppressed_total = r_suppressed.len() as u64 * s_data.len() as u64
            + r_covered.len() as u64 * s_suppressed.len() as u64;
        let qids = r_view.qids();
        'sup: for (r_rows, s_rows) in [
            (r_suppressed, s_all.as_slice()),
            (r_covered.as_slice(), s_suppressed),
        ] {
            for &ri in r_rows {
                for &si in s_rows {
                    if report.invocations == budget {
                        break 'sup;
                    }
                    let r = &r_data.records()[ri as usize];
                    let s = &s_data.records()[si as usize];
                    let is_match = comparer.compare(qids, r, s, &mut report.ledger)?;
                    report.invocations += 1;
                    report.suppressed_examined += 1;
                    if is_match {
                        report.suppressed_matched += 1;
                        report.matched_pairs.push((ri, si));
                    }
                }
            }
        }

        report.ledger.invocations = report.invocations;
        Ok(report)
    }
}

/// Pluggable record-pair comparison backend.
struct Comparer {
    schema: std::sync::Arc<pprl_data::Schema>,
    rule: MatchingRule,
    /// Per-QID normalization factors (1.0 for categorical attributes).
    norms: Vec<f64>,
    backend: Backend,
}

enum Backend {
    Oracle,
    Paillier(Box<PaillierBackend>),
    PaillierBatched(Box<PaillierBackend>),
}

struct PaillierBackend {
    keys: Keypair,
    rng: StdRng,
}

impl Comparer {
    fn new(
        mode: SmcMode,
        data: &DataSet,
        qids: &[usize],
        rule: &MatchingRule,
    ) -> Result<Self, SmcError> {
        let backend = match mode {
            SmcMode::Oracle => Backend::Oracle,
            SmcMode::Paillier { modulus_bits, seed }
            | SmcMode::PaillierBatched { modulus_bits, seed } => {
                // The integer protocol cannot evaluate edit distance.
                if rule.distances.contains(&AttrDistance::NormalizedEdit) {
                    return Err(SmcError::UnsupportedDistance("NormalizedEdit"));
                }
                let mut rng = StdRng::seed_from_u64(seed);
                let keys = Keypair::generate(&mut rng, modulus_bits);
                let payload = Box::new(PaillierBackend { keys, rng });
                if matches!(mode, SmcMode::PaillierBatched { .. }) {
                    Backend::PaillierBatched(payload)
                } else {
                    Backend::Paillier(payload)
                }
            }
        };
        let norms = qids
            .iter()
            .map(|&q| {
                data.schema()
                    .attribute(q)
                    .vgh()
                    .as_intervals()
                    .map(|h| h.norm_factor())
                    .unwrap_or(1.0)
            })
            .collect();
        Ok(Comparer {
            schema: std::sync::Arc::clone(data.schema()),
            rule: rule.clone(),
            norms,
            backend,
        })
    }

    fn compare(
        &mut self,
        qids: &[usize],
        r: &pprl_data::Record,
        s: &pprl_data::Record,
        ledger: &mut CostLedger,
    ) -> Result<bool, SmcError> {
        match &mut self.backend {
            // Same predicate the protocol evaluates; free of crypto.
            Backend::Oracle => Ok(records_match(&self.schema, qids, &self.rule, r, s)),
            Backend::Paillier(backend) => {
                let PaillierBackend { keys, rng } = backend.as_mut();
                for (pos, &q) in qids.iter().enumerate() {
                    let (a, b, t) =
                        encode_attribute(&self.rule, pos, r.value(q), s.value(q), &self.norms);
                    if t == u64::MAX {
                        continue; // θ ≥ 1: attribute can never fail
                    }
                    let ok = secure_threshold_match(
                        keys.public(),
                        keys.private(),
                        a,
                        b,
                        t,
                        rng,
                        ledger,
                    )?;
                    if !ok {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Backend::PaillierBatched(backend) => {
                let PaillierBackend { keys, rng } = backend.as_mut();
                let mut a_vals = Vec::with_capacity(qids.len());
                let mut b_vals = Vec::with_capacity(qids.len());
                let mut thresholds = Vec::with_capacity(qids.len());
                for (pos, &q) in qids.iter().enumerate() {
                    let (a, b, t) =
                        encode_attribute(&self.rule, pos, r.value(q), s.value(q), &self.norms);
                    if t == u64::MAX {
                        continue; // θ ≥ 1: attribute can never fail
                    }
                    a_vals.push(a);
                    b_vals.push(b);
                    thresholds.push(t);
                }
                if a_vals.is_empty() {
                    return Ok(true);
                }
                use pprl_crypto::protocol::record::{
                    alice_record_message, bob_record_message, querier_reveal_record,
                };
                let m_alice = alice_record_message(keys.public(), &a_vals, rng, ledger);
                let m_bob = bob_record_message(
                    keys.public(),
                    &m_alice,
                    &b_vals,
                    &thresholds,
                    rng,
                    ledger,
                )?;
                Ok(querier_reveal_record(keys.private(), &m_bob, ledger)?)
            }
        }
    }
}

/// Encodes one attribute comparison as integers for the Paillier protocol:
/// values `a, b` and squared threshold `t` such that the predicate is
/// `(a − b)² ≤ t`. Returns `t = u64::MAX` when the attribute can never
/// fail (θ ≥ 1 under Hamming).
fn encode_attribute(
    rule: &MatchingRule,
    pos: usize,
    rv: Value,
    sv: Value,
    norms: &[f64],
) -> (u64, u64, u64) {
    let theta = rule.thetas[pos];
    match rule.distances[pos] {
        AttrDistance::Hamming => {
            if theta >= 1.0 {
                (0, 0, u64::MAX)
            } else {
                (rv.as_cat() as u64, sv.as_cat() as u64, 0)
            }
        }
        AttrDistance::NormalizedEuclidean => {
            let a = (rv.as_num() * NUM_SCALE).round() as u64;
            let b = (sv.as_num() * NUM_SCALE).round() as u64;
            let limit = theta * norms[pos] * NUM_SCALE;
            (a, b, (limit * limit).floor() as u64)
        }
        AttrDistance::NormalizedEdit => unreachable!("rejected at construction"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
    use pprl_blocking::BlockingEngine;
    use pprl_data::synth::{generate, SynthConfig};

    const QIDS: [usize; 5] = [0, 1, 2, 3, 4];

    struct Fixture {
        a: DataSet,
        b: DataSet,
        va: AnonymizedView,
        vb: AnonymizedView,
        unknown: Vec<ClassPairRef>,
        rule: MatchingRule,
        total: u64,
    }

    fn fixture(n: usize) -> Fixture {
        let a = generate(&SynthConfig {
            records: n,
            seed: 71,
        });
        let b = generate(&SynthConfig {
            records: n,
            seed: 72,
        });
        let anon = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(8));
        let va = anon.anonymize(&a, &QIDS).unwrap();
        let vb = anon.anonymize(&b, &QIDS).unwrap();
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let out = BlockingEngine::new(rule.clone()).run(&va, &vb).unwrap();
        Fixture {
            total: out.total_pairs,
            unknown: out.unknown,
            a,
            b,
            va,
            vb,
            rule,
        }
    }

    fn step(allowance: SmcAllowance) -> SmcStep {
        SmcStep {
            heuristic: SelectionHeuristic::MinAvgFirst,
            allowance,
            strategy: LabelingStrategy::MaximizePrecision,
            mode: SmcMode::Oracle,
        }
    }

    #[test]
    fn budget_is_respected_with_partial_consumption() {
        let f = fixture(200);
        let budget = 500u64;
        let report = step(SmcAllowance::Pairs(budget))
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert!(report.invocations <= budget);
        let unknown_total: u64 = f.unknown.iter().map(|p| p.pairs).sum();
        if unknown_total > budget {
            assert_eq!(report.invocations, budget, "budget fully spent");
            assert!(!report.leftovers.is_empty());
        }
        // Examined + leftover = all unknown pairs.
        let leftover_pairs: u64 = report
            .leftovers
            .iter()
            .map(|l| l.class_pair.pairs - l.skip)
            .sum();
        assert_eq!(report.invocations + leftover_pairs, unknown_total);
    }

    #[test]
    fn unlimited_budget_clears_all_unknowns() {
        let f = fixture(150);
        let report = step(SmcAllowance::Unlimited)
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert!(report.leftovers.is_empty());
        let unknown_total: u64 = f.unknown.iter().map(|p| p.pairs).sum();
        assert_eq!(report.invocations, unknown_total);
    }

    #[test]
    fn smc_matches_are_true_matches() {
        let f = fixture(150);
        let report = step(SmcAllowance::Unlimited)
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        for &(ri, si) in &report.matched_pairs {
            assert!(records_match(
                f.a.schema(),
                &QIDS,
                &f.rule,
                &f.a.records()[ri as usize],
                &f.b.records()[si as usize]
            ));
        }
    }

    #[test]
    fn paillier_mode_agrees_with_oracle() {
        // Small slice so real crypto stays fast: limit to 40 comparisons.
        let f = fixture(80);
        let oracle = step(SmcAllowance::Pairs(40))
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let mut crypto_step = step(SmcAllowance::Pairs(40));
        crypto_step.mode = SmcMode::Paillier {
            modulus_bits: 256,
            seed: 5,
        };
        let crypto = crypto_step
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert_eq!(oracle.matched_pairs, crypto.matched_pairs);
        assert_eq!(oracle.invocations, crypto.invocations);
        assert!(crypto.ledger.encryptions > 0, "real crypto ran");
        assert_eq!(oracle.ledger.encryptions, 0, "oracle is crypto-free");
    }

    #[test]
    fn batched_paillier_agrees_with_oracle_and_counts_messages() {
        let f = fixture(80);
        let oracle = step(SmcAllowance::Pairs(30))
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let mut batched = step(SmcAllowance::Pairs(30));
        batched.mode = SmcMode::PaillierBatched {
            modulus_bits: 256,
            seed: 5,
        };
        let got = batched
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert_eq!(oracle.matched_pairs, got.matched_pairs);
        // Exactly two framed messages per record-pair comparison.
        assert_eq!(got.ledger.messages, 2 * got.invocations);
        assert!(got.ledger.bytes > 0);
    }

    #[test]
    fn edit_distance_rejected_in_paillier_mode() {
        let f = fixture(50);
        let mut rule = f.rule.clone();
        rule.distances[1] = AttrDistance::NormalizedEdit;
        let mut s = step(SmcAllowance::Pairs(10));
        s.mode = SmcMode::Paillier {
            modulus_bits: 256,
            seed: 1,
        };
        let err = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &rule, f.total)
            .unwrap_err();
        assert!(matches!(err, SmcError::UnsupportedDistance(_)));
    }

    #[test]
    fn zero_budget_leaves_everything() {
        let f = fixture(100);
        let report = step(SmcAllowance::Pairs(0))
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert_eq!(report.invocations, 0);
        assert_eq!(report.leftovers.len(), f.unknown.len());
        assert!(report.matched_pairs.is_empty());
    }
}
