//! Spends the SMC allowance on the ordered unknown class pairs.
//!
//! Record pairs are compared one by one, in deterministic row-major order
//! within each class pair; the class pair that straddles the budget is
//! consumed *partially* (its remaining record pairs join the leftovers).
//!
//! Three concerns layered on the basic loop:
//!
//! * **Execution modes** ([`SmcMode`]) — the real §V-A Paillier protocol
//!   (per-attribute or batched record-level), or a plaintext oracle
//!   evaluating the *same* predicate. Because the SMC protocol computes
//!   the exact distance, the modes return identical labels (enforced by
//!   `tests/` equivalence tests); sweeps use the oracle so that
//!   million-pair experiments finish.
//! * **Fault-tolerant transport** ([`ChannelConfig`]) — when configured,
//!   the batched wire exchange runs over a [`FaultyTransport`] behind a
//!   [`ReliableLink`]: frames can be dropped, corrupted, duplicated,
//!   reordered, or delayed, and the link retries with backoff. A pair
//!   whose retry budget runs out is *abandoned* — labeled by the
//!   configured [`LabelingStrategy`] (maximize-precision ⇒ non-match, so
//!   precision stays 1.0 by construction) and tallied in the
//!   [`DegradationReport`].
//! * **Resumable sessions** ([`SmcSession`]) — the loop is a checkpointable
//!   state machine: [`SmcStep::start`] yields an [`SmcRunner`] that can be
//!   stepped pair by pair, snapshotted with [`SmcRunner::checkpoint`]
//!   (serde-serializable), and later revived with [`SmcStep::resume`]
//!   without re-running or double-charging any record pair. Each decided
//!   pair is also available as a journalable [`PairEvent`]
//!   ([`SmcRunner::step_pair_event`]) and can be *replayed* from a durable
//!   journal ([`SmcRunner::replay_pair_event`]) without re-running the
//!   protocol — the crash-recovery path of `pprl-core::run_journaled`.
//! * **Deadline budget** ([`DeadlineBudget`]) — the wall-clock analogue of
//!   the allowance. Once it expires, remaining in-allowance pairs are
//!   abandoned (tallied as [`AbandonReason::DeadlineExpired`]) instead of
//!   compared, and degrade through the same [`LabelingStrategy`] path.

use crate::allowance::SmcAllowance;
use crate::comparator::{self, Comparator, CompareCtx, ComparatorStats};
use crate::deadline::{DeadlineBudget, DeadlineClock};
use crate::heuristics::{order_unknown, SelectionHeuristic};
use crate::strategy::LabelingStrategy;
use crate::SmcError;
use pprl_anon::AnonymizedView;
use pprl_blocking::{AttrDistance, ClassPairRef, MatchingRule};
use pprl_crypto::paillier::Keypair;
use pprl_crypto::protocol::retry::RetryPolicy;
use pprl_crypto::protocol::transport::{FaultConfig, FaultStats};
use pprl_crypto::CostLedger;
use pprl_data::{DataSet, Value};
use serde::{Deserialize, Serialize};

/// Fixed-point scale for continuous values entering the integer-only
/// Paillier protocol (documented quantization: 1/1000 of a unit).
const NUM_SCALE: f64 = 1000.0;

/// How unknown pairs are actually compared.
#[derive(Clone, Copy, Debug)]
pub enum SmcMode {
    /// Plaintext oracle, bit-identical to the protocol (for sweeps).
    Oracle,
    /// Real Paillier protocol, one masked comparison per attribute with
    /// early exit on the first failing attribute (fewest exponentiations).
    Paillier {
        /// Modulus bits for the querying party's key pair.
        modulus_bits: usize,
        /// RNG seed for keygen and encryption randomness.
        seed: u64,
    },
    /// Real Paillier protocol using the *batched record-level* wire
    /// exchange ([`pprl_crypto::protocol::record`]): exactly two framed
    /// messages per record pair, so the ledger's message/byte counts
    /// reflect the deployable protocol. This is the mode that honors a
    /// configured [`ChannelConfig`].
    PaillierBatched {
        /// Modulus bits for the querying party's key pair.
        modulus_bits: usize,
        /// RNG seed for keygen and encryption randomness.
        seed: u64,
        /// Pack several attributes' masked comparisons slot-wise into each
        /// ciphertext of Bob's reply ([`pprl_crypto::protocol::pack`]),
        /// cutting Bob's modpows, the querier's decryptions, and the
        /// reply bytes roughly by the slots-per-ciphertext factor. Changes
        /// the wire format (and so the job fingerprint); decisions are
        /// provably identical to the unpacked exchange.
        pack: bool,
    },
    /// q-gram CLK Bloom-filter matching ([`pprl_bloom`]): records are
    /// encoded as bit filters, compared by Dice coefficient against a
    /// match threshold, optionally hardened with ε-budgeted DP bit
    /// flipping. Approximate (threshold-tunable recall/precision) but
    /// orders of magnitude faster than the Paillier exchange; no key
    /// material, so networked sessions skip the key broadcast entirely.
    Bloom {
        /// Filter geometry, q-gram size, Dice threshold, DP budget, and
        /// the hash-family seed — all fingerprinted, so mismatched
        /// parties refuse each other at the Hello handshake.
        params: pprl_bloom::ClkParams,
    },
}

impl SmcMode {
    /// Wire code of the comparator backend family, exchanged in the
    /// Hello handshake so mismatched parties refuse with a typed error
    /// before fingerprints are even compared.
    pub fn backend_code(&self) -> u8 {
        match self {
            SmcMode::Bloom { .. } => 1,
            _ => 0,
        }
    }

    /// Stable backend family name for reports and metrics.
    pub fn backend_name(&self) -> &'static str {
        match self {
            SmcMode::Oracle => "oracle",
            SmcMode::Bloom { .. } => "bloom",
            _ => "paillier",
        }
    }

    /// True when the backend decides pairs by the matching rule itself
    /// (oracle / Paillier), so every declared SMC match is a true match
    /// by construction. Approximate backends (Dice over CLK filters) can
    /// declare false positives and must be scored against the rule.
    pub fn is_exact(&self) -> bool {
        !matches!(self, SmcMode::Bloom { .. })
    }
}

/// Network model for the wire-level exchange: fault injection rates plus
/// the retry policy that rides over them.
///
/// Only [`SmcMode::PaillierBatched`] moves bytes over the simulated
/// network; [`SmcMode::Oracle`] and the per-attribute mode ignore the
/// channel (they model computation, not transport).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Injected fault rates.
    pub faults: FaultConfig,
    /// Retry/backoff policy of the reliable link.
    pub retry: RetryPolicy,
    /// Seed for fault injection and backoff jitter.
    pub seed: u64,
}

impl ChannelConfig {
    /// A perfect network with the default retry policy armed.
    pub fn reliable() -> Self {
        ChannelConfig {
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
            seed: 0,
        }
    }

    /// Every fault at `rate`, default retries — the chaos-sweep knob.
    pub fn faulty(rate: f64, seed: u64) -> Self {
        ChannelConfig {
            faults: FaultConfig::uniform(rate),
            retry: RetryPolicy::default(),
            seed,
        }
    }
}

/// Configuration of the SMC step.
#[derive(Clone, Copy, Debug)]
pub struct SmcStep {
    /// Candidate ordering.
    pub heuristic: SelectionHeuristic,
    /// Budget.
    pub allowance: SmcAllowance,
    /// What happens to pairs the budget never reaches (and, under a faulty
    /// channel, to pairs whose retries run out).
    pub strategy: LabelingStrategy,
    /// Oracle or real crypto.
    pub mode: SmcMode,
    /// Simulated network under the wire protocol; `None` keeps the
    /// historical in-process hand-off (a perfect, unmetered network).
    pub channel: Option<ChannelConfig>,
    /// Time budget for the step; [`DeadlineBudget::None`] leaves the
    /// allowance as the only bound.
    pub deadline: DeadlineBudget,
}

/// A class pair the budget only partially covered (or never reached):
/// `skip` record pairs (row-major order) were already examined.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeftoverPair {
    /// The class pair.
    pub class_pair: ClassPairRef,
    /// Record pairs already consumed from it.
    pub skip: u64,
}

/// Per-class-pair statistics from the examined sample — training data for
/// §V-B's strategy-3 classifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExaminedStats {
    /// The class pair.
    pub class_pair: ClassPairRef,
    /// Record pairs examined (≤ `class_pair.pairs`).
    pub examined: u64,
    /// Of those, how many matched.
    pub matched: u64,
}

/// Why a record pair was abandoned — decided by the configured
/// [`LabelingStrategy`] instead of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbandonReason {
    /// The transport exhausted its retry budget on this pair's exchange.
    RetryExhausted,
    /// The [`DeadlineBudget`] expired before this pair could be compared.
    DeadlineExpired,
}

/// Abandoned-pair counts, tallied by [`AbandonReason`] so the deadline
/// path never overloads the transport-degradation counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbandonTally {
    /// Pairs abandoned after transport retry exhaustion.
    pub retry_exhausted: u64,
    /// Pairs abandoned because the deadline budget expired.
    pub deadline_expired: u64,
}

impl AbandonTally {
    /// All abandoned pairs, regardless of reason.
    pub fn total(&self) -> u64 {
        self.retry_exhausted + self.deadline_expired
    }

    fn record(&mut self, reason: AbandonReason) {
        match reason {
            AbandonReason::RetryExhausted => self.retry_exhausted += 1,
            AbandonReason::DeadlineExpired => self.deadline_expired += 1,
        }
    }
}

/// What graceful degradation cost: the toll of running over a faulty
/// network with bounded retries and/or under an expiring deadline.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Record pairs the protocol never decided, tallied by reason; each
    /// was labeled by the [`LabelingStrategy`] instead.
    pub abandoned: AbandonTally,
    /// Abandoned pairs the strategy declared *match* (only under
    /// [`LabelingStrategy::MaximizeRecall`]; maximize-precision declares
    /// non-match, keeping precision at 1.0 by construction).
    pub declared: Vec<(u32, u32)>,
    /// Retransmissions the reliable link performed (faults survived by
    /// retrying).
    pub retries_spent: u64,
    /// Frames the link discarded as corrupt or duplicate — faults that
    /// were detected and absorbed without harming the result.
    pub faults_survived: u64,
    /// Faults the simulated network actually injected.
    pub injected: FaultStats,
    /// Backoff time the link would have slept (virtual, not wall-clock).
    pub virtual_backoff_ms: u64,
}

impl DegradationReport {
    /// True when at least one pair was decided by strategy, not protocol.
    pub fn degraded(&self) -> bool {
        self.abandoned.total() > 0
    }

    /// All abandoned pairs, regardless of reason.
    pub fn pairs_abandoned(&self) -> u64 {
        self.abandoned.total()
    }
}

/// Outcome of the SMC step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmcReport {
    /// Resolved budget in record pairs.
    pub budget: u64,
    /// Record-pair comparisons actually performed (abandoned pairs count:
    /// they consumed budget).
    pub invocations: u64,
    /// Record pairs `(row in R, row in S)` the SMC step labeled *match*.
    pub matched_pairs: Vec<(u32, u32)>,
    /// Class pairs (fully or partially) not examined.
    pub leftovers: Vec<LeftoverPair>,
    /// Stats per examined class pair.
    pub examined: Vec<ExaminedStats>,
    /// Pairs involving a suppressed record (DataFly): total in the input.
    pub suppressed_total: u64,
    /// Of those, how many the budget covered.
    pub suppressed_examined: u64,
    /// Of the examined suppressed pairs, how many matched.
    pub suppressed_matched: u64,
    /// Which comparator backend ran and what it moved (live counters;
    /// replayed pairs are counted in `pairs_compared` but exchange no
    /// fresh bytes, so `clk_bits_exchanged`/`dp_flips` tally only work
    /// performed by *this* incarnation of the session).
    pub comparator: ComparatorStats,
    /// Crypto cost accounting (all zeros in oracle mode except invocations).
    pub ledger: CostLedger,
    /// Fault-tolerance accounting (all zeros without a faulty channel).
    pub degradation: DegradationReport,
}

/// Where a session stands in the deterministic pair walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionPhase {
    /// Walking the heuristic-ordered unknown class pairs: `cursor` indexes
    /// the ordering, `skip` record pairs of that class were consumed
    /// (row-major), `matched` of them matched.
    Ordered {
        /// Index into the deterministic class-pair ordering.
        cursor: u32,
        /// Record pairs consumed from the class at `cursor`.
        skip: u64,
        /// Of those, how many matched.
        matched: u64,
    },
    /// Walking suppressed-record pairs: group 0 is suppressed-R × all-S,
    /// group 1 is covered-R × suppressed-S; `offset` is the row-major
    /// position within the group.
    Suppressed {
        /// Which suppressed group.
        group: u8,
        /// Row-major position within the group.
        offset: u64,
    },
    /// Every reachable pair has been decided.
    Done,
}

/// Serializable snapshot of a partially-executed SMC step.
///
/// Everything needed to continue after a crash is here: the phase cursor
/// (which record pair is next), the allowance spent, and the labels so
/// far. The class-pair ordering itself is *recomputed* on resume — it is a
/// deterministic function of the inputs and the configured heuristic — so
/// the snapshot stays small.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmcSession {
    /// Resolved budget in record pairs.
    pub budget: u64,
    /// Walk position.
    pub phase: SessionPhase,
    /// Record-pair comparisons performed so far.
    pub invocations: u64,
    /// Labels so far.
    pub matched_pairs: Vec<(u32, u32)>,
    /// Leftovers recorded so far.
    pub leftovers: Vec<LeftoverPair>,
    /// Examined-class stats so far.
    pub examined: Vec<ExaminedStats>,
    /// Suppressed-pair universe size (validated on resume).
    pub suppressed_total: u64,
    /// Suppressed pairs examined so far.
    pub suppressed_examined: u64,
    /// Of those, matched.
    pub suppressed_matched: u64,
    /// Cost accounting so far.
    pub ledger: CostLedger,
    /// Degradation accounting so far.
    pub degradation: DegradationReport,
    /// Elapsed time charged against the [`DeadlineBudget`] so far
    /// (restored on resume, so a crashed job cannot reset its deadline).
    #[serde(default)]
    pub elapsed_ms: u64,
}

impl SmcSession {
    fn fresh(budget: u64, suppressed_total: u64) -> Self {
        SmcSession {
            budget,
            phase: SessionPhase::Ordered {
                cursor: 0,
                skip: 0,
                matched: 0,
            },
            invocations: 0,
            matched_pairs: Vec::new(),
            leftovers: Vec::new(),
            examined: Vec::new(),
            suppressed_total,
            suppressed_examined: 0,
            suppressed_matched: 0,
            ledger: CostLedger::new(),
            degradation: DegradationReport::default(),
            elapsed_ms: 0,
        }
    }
}

/// How one record pair was decided — the journalable unit of SMC work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairDecision {
    /// The protocol decided *match*.
    Matched,
    /// The protocol decided *non-match*.
    NonMatch,
    /// The protocol never decided; the [`LabelingStrategy`] did.
    Abandoned(AbandonReason),
}

/// One decided record pair: what the run journal records, and what
/// [`SmcRunner::replay_pair_event`] re-applies on crash recovery without
/// re-running any cryptography.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairEvent {
    /// Row in R.
    pub ri: u32,
    /// Row in S.
    pub si: u32,
    /// How the pair was decided.
    pub decision: PairDecision,
}

/// The batched integer encoding of one non-trivial record pair: Alice's
/// values, Bob's values, and the squared thresholds, one entry per
/// decidable attribute. What each side of the wire protocol feeds into
/// [`pprl_crypto::protocol::record`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedPair {
    /// Alice's encoded attribute values.
    pub a_vals: Vec<u64>,
    /// Bob's encoded attribute values.
    pub b_vals: Vec<u64>,
    /// Squared thresholds, aligned with the values.
    pub thresholds: Vec<u64>,
}

/// One step of the deterministic pair walk as seen by a data-holder
/// process: the pair, and its batched encoding (`None` when the pair is
/// trivially matched — no attribute can fail — and exchanges no messages).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkedPair {
    /// Row in R.
    pub ri: u32,
    /// Row in S.
    pub si: u32,
    /// Batched encoding; `None` for a trivial match.
    pub encoded: Option<EncodedPair>,
}

/// One step of the CLK pair walk as seen by a data-holder process: the
/// pair plus this party's own filter for it. Every CLK pair is
/// non-trivial, so (unlike [`WalkedPair`]) the encoding is never absent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkedClk {
    /// Row in R.
    pub ri: u32,
    /// Row in S.
    pub si: u32,
    /// This party's side of the pair: Alice's filter of the R record, or
    /// Bob's filter of the S record.
    pub clk: pprl_bloom::Clk,
    /// DP flips applied to that filter.
    pub flips: u32,
}

/// The querying party's hook into a genuinely distributed deployment:
/// Alice and Bob run in their own processes and only ciphertext messages
/// cross the boundary (`pprl-net` implements this over TCP).
///
/// Cost-accounting contract (mirrors the in-process
/// [`TransportedBackend`] so a networked run's merged ledger equals the
/// single-process run's): implementations record *querier-side* costs
/// into the passed ledger — one key message per holder at broadcast, one
/// ack frame per received pair message — and nothing else; the holders
/// meter their own ledgers and ship them home at session end.
pub trait RemoteParty: Send + Sync {
    /// Delivers the public-key broadcast to both data holders. Called
    /// once per [`SmcRunner::connect_remote`]; resumed sessions make this
    /// idempotent (a holder that already holds the key is not re-charged).
    fn broadcast_key(
        &mut self,
        key_message: &[u8],
        ledger: &mut CostLedger,
    ) -> Result<(), SmcError>;

    /// Returns Bob's batched reply for non-trivial pair `pair_id`.
    /// `Ok(None)` means the exchange was abandoned after exhausting the
    /// link's recovery budget — the pair degrades exactly like a
    /// retry-exhausted pair on the simulated channel.
    fn bob_message(
        &mut self,
        pair_id: u64,
        ledger: &mut CostLedger,
    ) -> Result<Option<Vec<u8>>, SmcError>;

    /// Non-trivial pairs already exchanged by a previous incarnation of
    /// this session (crash recovery); the pair-id counter resumes after
    /// it so retransmitted and fresh pairs cannot collide.
    fn resume_pair_watermark(&self) -> u64 {
        0
    }
}

impl SmcStep {
    /// Runs the SMC step over the blocking outcome's unknown class pairs,
    /// start to finish.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        r_data: &DataSet,
        s_data: &DataSet,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
        unknown: &[ClassPairRef],
        rule: &MatchingRule,
        total_pairs: u64,
    ) -> Result<SmcReport, SmcError> {
        let mut runner = self.start(r_data, s_data, r_view, s_view, unknown, rule, total_pairs)?;
        runner.run_to_completion()?;
        Ok(runner.finish())
    }

    /// Begins a fresh, checkpointable session.
    #[allow(clippy::too_many_arguments)]
    pub fn start<'a>(
        &self,
        r_data: &'a DataSet,
        s_data: &'a DataSet,
        r_view: &'a AnonymizedView,
        s_view: &'a AnonymizedView,
        unknown: &[ClassPairRef],
        rule: &MatchingRule,
        total_pairs: u64,
    ) -> Result<SmcRunner<'a>, SmcError> {
        self.start_warm(r_data, s_data, r_view, s_view, unknown, rule, total_pairs, None)
    }

    /// [`start`](Self::start) with a pre-generated key pair — the
    /// warm-keypair path of a multi-job daemon, where prime generation
    /// (the expensive part of session setup) happens once and every job
    /// with the same Paillier parameters reuses the result. The caller
    /// must supply a keypair of this mode's `modulus_bits`; a daemon that
    /// caches by the mode seed gets exactly the pair a cold start would
    /// have generated. Ignored by the oracle and transported backends.
    #[allow(clippy::too_many_arguments)]
    pub fn start_warm<'a>(
        &self,
        r_data: &'a DataSet,
        s_data: &'a DataSet,
        r_view: &'a AnonymizedView,
        s_view: &'a AnonymizedView,
        unknown: &[ClassPairRef],
        rule: &MatchingRule,
        total_pairs: u64,
        warm: Option<&Keypair>,
    ) -> Result<SmcRunner<'a>, SmcError> {
        let budget = self.allowance.budget_pairs(total_pairs);
        let layout = SuppressedLayout::compute(r_data, s_data, r_view, s_view);
        let session = SmcSession::fresh(budget, layout.total);
        self.attach(
            session, layout, r_data, s_data, r_view, s_view, unknown, rule, warm,
        )
    }

    /// Revives a checkpointed session: the class-pair ordering is
    /// recomputed (it is deterministic), the snapshot supplies the cursor,
    /// spent allowance, and labels. No already-examined pair is re-run or
    /// re-charged.
    #[allow(clippy::too_many_arguments)]
    pub fn resume<'a>(
        &self,
        session: SmcSession,
        r_data: &'a DataSet,
        s_data: &'a DataSet,
        r_view: &'a AnonymizedView,
        s_view: &'a AnonymizedView,
        unknown: &[ClassPairRef],
        rule: &MatchingRule,
        total_pairs: u64,
    ) -> Result<SmcRunner<'a>, SmcError> {
        let budget = self.allowance.budget_pairs(total_pairs);
        if session.budget != budget {
            return Err(SmcError::SessionMismatch(format!(
                "snapshot budget {} vs configured {budget}",
                session.budget
            )));
        }
        let layout = SuppressedLayout::compute(r_data, s_data, r_view, s_view);
        if session.suppressed_total != layout.total {
            return Err(SmcError::SessionMismatch(format!(
                "snapshot saw {} suppressed pairs, inputs have {}",
                session.suppressed_total, layout.total
            )));
        }
        self.attach(
            session, layout, r_data, s_data, r_view, s_view, unknown, rule, None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn attach<'a>(
        &self,
        mut session: SmcSession,
        layout: SuppressedLayout,
        r_data: &'a DataSet,
        s_data: &'a DataSet,
        r_view: &'a AnonymizedView,
        s_view: &'a AnonymizedView,
        unknown: &[ClassPairRef],
        rule: &MatchingRule,
        warm: Option<&Keypair>,
    ) -> Result<SmcRunner<'a>, SmcError> {
        let ordered = order_unknown(r_view, s_view, unknown, rule, self.heuristic);
        if let SessionPhase::Ordered { cursor, .. } = session.phase {
            if cursor as usize > ordered.len() {
                return Err(SmcError::SessionMismatch(format!(
                    "snapshot cursor {cursor} beyond {} ordered class pairs",
                    ordered.len()
                )));
            }
        }
        let comparer = Comparer::new(
            self.mode,
            self.channel,
            r_data,
            r_view.qids(),
            rule,
            &mut session.ledger,
            warm,
        )?;
        let clock = DeadlineClock::new(self.deadline, session.elapsed_ms);
        Ok(SmcRunner {
            strategy: self.strategy,
            r_data,
            s_data,
            r_view,
            s_view,
            qids: r_view.qids().to_vec(),
            ordered,
            layout,
            comparer,
            clock,
            replayed: 0,
            session,
        })
    }
}

/// Row universes for the suppressed-record phase (DataFly: suppressed
/// records carry no generalization sequence, so no heuristic can rank
/// them — they are processed last, in deterministic row order).
struct SuppressedLayout {
    r_suppressed: Vec<u32>,
    s_suppressed: Vec<u32>,
    s_all: Vec<u32>,
    r_covered: Vec<u32>,
    total: u64,
}

impl SuppressedLayout {
    fn compute(
        r_data: &DataSet,
        s_data: &DataSet,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
    ) -> Self {
        let r_suppressed = r_view.suppressed().to_vec();
        let s_suppressed = s_view.suppressed().to_vec();
        let s_all: Vec<u32> = (0..s_data.len() as u32).collect();
        let r_covered: Vec<u32> = {
            let mut sup = vec![false; r_data.len()];
            for &row in &r_suppressed {
                if let Some(flag) = sup.get_mut(row as usize) {
                    *flag = true;
                }
            }
            (0..r_data.len() as u32)
                .filter(|&row| !sup.get(row as usize).copied().unwrap_or(false))
                .collect()
        };
        let total = r_suppressed.len() as u64 * s_data.len() as u64
            + r_covered.len() as u64 * s_suppressed.len() as u64;
        SuppressedLayout {
            r_suppressed,
            s_suppressed,
            s_all,
            r_covered,
            total,
        }
    }

    /// Row universes of a suppressed group: 0 ⇒ suppressed-R × all-S,
    /// 1 ⇒ covered-R × suppressed-S.
    fn group(&self, group: u8) -> (&[u32], &[u32]) {
        if group == 0 {
            (&self.r_suppressed, &self.s_all)
        } else {
            (&self.r_covered, &self.s_suppressed)
        }
    }
}

/// An in-flight SMC session: step it, checkpoint it, finish it.
pub struct SmcRunner<'a> {
    strategy: LabelingStrategy,
    r_data: &'a DataSet,
    s_data: &'a DataSet,
    r_view: &'a AnonymizedView,
    s_view: &'a AnonymizedView,
    qids: Vec<usize>,
    ordered: Vec<ClassPairRef>,
    layout: SuppressedLayout,
    comparer: Comparer,
    clock: DeadlineClock,
    /// Pairs applied via [`SmcRunner::replay_pair_event`] in this process
    /// (crash-recovery accounting: replays never touch the comparer).
    replayed: u64,
    session: SmcSession,
}

impl<'a> SmcRunner<'a> {
    /// True once every reachable pair has been decided.
    pub fn is_done(&self) -> bool {
        matches!(self.session.phase, SessionPhase::Done)
    }

    /// Allowance spent so far.
    pub fn invocations(&self) -> u64 {
        self.session.invocations
    }

    /// Decides the next record pair (or performs the pending phase
    /// transition). Returns `false` once the session is done.
    pub fn step_pair(&mut self) -> Result<bool, SmcError> {
        Ok(self.step_pair_event()?.is_some())
    }

    /// Like [`step_pair`](Self::step_pair), but returns the decided pair
    /// as a journalable [`PairEvent`] (`None` once the session is done).
    pub fn step_pair_event(&mut self) -> Result<Option<PairEvent>, SmcError> {
        let Some((ri, si)) = self.locate_next_pair()? else {
            return Ok(None);
        };
        let decision = if self.clock.expired() {
            // Deadline spent: the pair is charged against the allowance
            // and abandoned without touching the protocol; the strategy
            // decides its label.
            PairDecision::Abandoned(AbandonReason::DeadlineExpired)
        } else {
            match self.compare_pair(ri, si)? {
                CompareOutcome::Decided(true) => PairDecision::Matched,
                CompareOutcome::Decided(false) => PairDecision::NonMatch,
                CompareOutcome::Abandoned => {
                    PairDecision::Abandoned(AbandonReason::RetryExhausted)
                }
            }
        };
        self.apply_decision(ri, si, decision)?;
        Ok(Some(PairEvent { ri, si, decision }))
    }

    /// Re-applies a journaled [`PairEvent`] during crash recovery: the
    /// deterministic walk is advanced to the next pair, verified against
    /// the event, and the recorded decision is applied *without invoking
    /// the comparer* — completed SMC work is never re-executed. Replays
    /// are counted in [`replayed_pairs`](Self::replayed_pairs).
    pub fn replay_pair_event(&mut self, event: &PairEvent) -> Result<(), SmcError> {
        let Some((ri, si)) = self.locate_next_pair()? else {
            return Err(SmcError::SessionMismatch(
                "journal replays an event beyond the end of the pair walk".into(),
            ));
        };
        if (ri, si) != (event.ri, event.si) {
            return Err(SmcError::SessionMismatch(format!(
                "journal replays pair ({}, {}) but the deterministic walk is at ({ri}, {si})",
                event.ri, event.si
            )));
        }
        self.apply_decision(ri, si, event.decision)?;
        self.replayed += 1;
        Ok(())
    }

    /// Pairs applied from a journal instead of executed in this process.
    pub fn replayed_pairs(&self) -> u64 {
        self.replayed
    }

    /// [`replay_pair_event`](Self::replay_pair_event) plus ledger
    /// restoration: merges the journaled per-pair cost delta, so a
    /// crash-recovered session's ledger is identical to the uninterrupted
    /// run's at every pair boundary — in any mode, not just oracle.
    pub fn replay_pair_event_with_costs(
        &mut self,
        event: &PairEvent,
        costs: &CostLedger,
    ) -> Result<(), SmcError> {
        self.replay_pair_event(event)?;
        self.session.ledger.merge(costs);
        Ok(())
    }

    /// The session's cost ledger so far (what a journaling driver diffs
    /// around each pair to produce durable cost deltas).
    pub fn ledger(&self) -> &CostLedger {
        &self.session.ledger
    }

    /// Folds a remote data holder's end-of-session cost summary into the
    /// session ledger (holders meter their own encryptions and messages;
    /// the querier merges them before reporting).
    pub fn absorb_remote_costs(&mut self, costs: &CostLedger) {
        self.session.ledger.merge(costs);
    }

    /// Converts a local session into a *networked* one: the data holders
    /// live behind the [`RemoteParty`] hook, and whatever session setup
    /// the backend's wire protocol needs (the Paillier public-key
    /// broadcast; nothing for CLK) is delivered through that hook before
    /// the first pair. Requires a backend with a wire protocol —
    /// [`SmcMode::PaillierBatched`] or [`SmcMode::Bloom`] — and no
    /// simulated channel: the socket *is* the channel.
    pub fn connect_remote(&mut self, party: Box<dyn RemoteParty>) -> Result<(), SmcError> {
        let remote = self
            .comparer
            .backend
            .connect_remote(party, &mut self.session.ledger)?;
        self.comparer.backend = remote;
        Ok(())
    }

    /// Advances the deterministic pair walk one step *without running any
    /// protocol*, returning the pair and its batched encoding. This is
    /// the data-holder side of a networked session: Alice and Bob each
    /// replicate the walk locally (it is decision-independent — see
    /// [`upcoming_pairs`](Self::upcoming_pairs) — so a placeholder
    /// non-match advances it exactly as the querier's real decision
    /// will), producing or consuming one wire message per non-trivial
    /// pair. `None` once the walk is complete.
    pub fn walk_next_encoded(&mut self) -> Result<Option<WalkedPair>, SmcError> {
        let Some((ri, si)) = self.locate_next_pair()? else {
            return Ok(None);
        };
        let r = self
            .r_data
            .records()
            .get(ri as usize)
            .ok_or(SmcError::Internal("R record index out of range"))?;
        let s = self
            .s_data
            .records()
            .get(si as usize)
            .ok_or(SmcError::Internal("S record index out of range"))?;
        let encoded = batch_encode(&self.comparer.rule, &self.qids, r, s, &self.comparer.norms)?
            .map(|(a_vals, b_vals, thresholds)| EncodedPair {
                a_vals,
                b_vals,
                thresholds,
            });
        self.apply_decision(ri, si, PairDecision::NonMatch)?;
        Ok(Some(WalkedPair { ri, si, encoded }))
    }

    /// [`walk_next_encoded`](Self::walk_next_encoded) without the batched
    /// Paillier encoding — the data-holder walk of backends whose wire
    /// messages are derived from the raw records (the CLK exchange, where
    /// *every* pair is non-trivial and gets exactly one ordinal).
    pub fn walk_next_pair(&mut self) -> Result<Option<(u32, u32)>, SmcError> {
        let Some((ri, si)) = self.locate_next_pair()? else {
            return Ok(None);
        };
        self.apply_decision(ri, si, PairDecision::NonMatch)?;
        Ok(Some((ri, si)))
    }

    /// [`walk_next_pair`](Self::walk_next_pair) plus this party's own CLK
    /// for the pair — Alice's side-A filter of the R record or Bob's
    /// side-B filter of the S record — produced with the exact
    /// canonicalization and per-`(side, row)` DP noise stream the
    /// querier's local mirror uses, so a resumed holder re-encodes
    /// byte-identical wire messages.
    pub fn walk_next_clk(
        &mut self,
        params: &pprl_bloom::ClkParams,
        side: u8,
    ) -> Result<Option<WalkedClk>, SmcError> {
        let Some((ri, si)) = self.walk_next_pair()? else {
            return Ok(None);
        };
        let (data, row) = if side == pprl_bloom::SIDE_A {
            (self.r_data, ri)
        } else {
            (self.s_data, si)
        };
        let rec = data
            .records()
            .get(row as usize)
            .ok_or(SmcError::Internal("record index out of range"))?;
        let (clk, flips) = comparator::clk_encode_side(params, &self.qids, rec, side, row);
        Ok(Some(WalkedClk { ri, si, clk, flips }))
    }

    /// Advances bookkeeping-only phase transitions (leftover pushes, empty
    /// classes, suppressed-group switches) until the walk rests on the
    /// next comparable pair; `None` once every reachable pair is decided.
    fn locate_next_pair(&mut self) -> Result<Option<(u32, u32)>, SmcError> {
        walk_locate(
            &mut self.session,
            &self.ordered,
            &self.layout,
            self.r_view,
            self.s_view,
        )
    }

    /// Applies a decision to the pair the walk currently rests on (the
    /// one [`locate_next_pair`](Self::locate_next_pair) just returned):
    /// labels, degradation, budget charge, and the class-end / partial-
    /// consumption bookkeeping.
    fn apply_decision(
        &mut self,
        ri: u32,
        si: u32,
        decision: PairDecision,
    ) -> Result<(), SmcError> {
        // A performed comparison costs deadline budget; a deadline-
        // abandoned pair, by definition, ran no protocol and costs none.
        if decision != PairDecision::Abandoned(AbandonReason::DeadlineExpired) {
            self.clock.charge_pair();
        }
        walk_apply(&mut self.session, &self.ordered, self.strategy, ri, si, decision)?;
        // Settle bookkeeping-only transitions immediately: between steps
        // the session always rests on the next comparable pair or on
        // `Done`, so replaying the journal of a completed run reports
        // `is_done()` without one extra probing step.
        self.locate_next_pair()?;
        Ok(())
    }

    /// Steps at most `n` pairs; returns how many were actually decided.
    pub fn step_pairs(&mut self, n: u64) -> Result<u64, SmcError> {
        let mut done = 0;
        while done < n && self.step_pair()? {
            done += 1;
        }
        Ok(done)
    }

    /// Runs until every reachable pair is decided.
    pub fn run_to_completion(&mut self) -> Result<(), SmcError> {
        while self.step_pair()? {}
        Ok(())
    }

    /// True when the pair walk may be executed in concurrent batches:
    /// per-worker comparer duplication must be possible (not the
    /// transported backend, whose reliable link sequences frames
    /// serially) and no deadline may be armed (expiry is checked
    /// *between* pairs — a sequential notion a batch cannot honor
    /// mid-flight without changing which pairs get abandoned).
    pub fn parallelizable(&self) -> bool {
        self.clock.is_unbounded() && self.comparer.backend.forkable()
    }

    /// Enumerates the next (up to) `max` comparable pairs without
    /// advancing the live walk. The probe runs on a *cloned* session:
    /// [`walk_apply`] moves the cursor identically whatever the decision
    /// was, so feeding it placeholder non-matches enumerates exactly the
    /// pairs the live walk will visit.
    fn upcoming_pairs(&self, max: usize) -> Result<Vec<(u32, u32)>, SmcError> {
        let mut probe = self.session.clone();
        let mut pairs = Vec::new();
        while pairs.len() < max {
            let Some((ri, si)) = walk_locate(
                &mut probe,
                &self.ordered,
                &self.layout,
                self.r_view,
                self.s_view,
            )?
            else {
                break;
            };
            pairs.push((ri, si));
            walk_apply(
                &mut probe,
                &self.ordered,
                self.strategy,
                ri,
                si,
                PairDecision::NonMatch,
            )?;
        }
        Ok(pairs)
    }

    /// Decides up to `n` pairs, comparing them concurrently on up to
    /// `threads` workers; returns how many were decided. Results are
    /// identical to [`step_pairs`](Self::step_pairs). Falls back to the
    /// sequential loop when `threads <= 1` or the session is not
    /// [`parallelizable`](Self::parallelizable).
    pub fn step_pairs_parallel(&mut self, n: u64, threads: usize) -> Result<u64, SmcError> {
        Ok(self.step_pair_events_parallel(n, threads)?.len() as u64)
    }

    /// Like [`step_pairs_parallel`](Self::step_pairs_parallel), but
    /// returns the decided pairs as journalable [`PairEvent`]s in walk
    /// order — what the journaled runner appends as outcome frames.
    /// Results are identical to repeated
    /// [`step_pair_event`](Self::step_pair_event) calls: the batch is
    /// enumerated by probing the deterministic walk, each worker runs an
    /// independent comparer (decisions are randomness-independent), and
    /// the decisions are applied *in walk order* with per-pair ledgers
    /// merged into the session ledger (merging is commutative, and each
    /// pair's cost is a function of the pair alone).
    pub fn step_pair_events_parallel(
        &mut self,
        n: u64,
        threads: usize,
    ) -> Result<Vec<PairEvent>, SmcError> {
        if threads <= 1 || !self.parallelizable() {
            let mut events = Vec::new();
            while (events.len() as u64) < n {
                let Some(event) = self.step_pair_event()? else {
                    break;
                };
                events.push(event);
            }
            return Ok(events);
        }
        let max = usize::try_from(n).unwrap_or(usize::MAX);
        let pairs = self.upcoming_pairs(max)?;
        if pairs.is_empty() {
            // Only bookkeeping transitions remain; drain them on the
            // live walk (this is where the session reaches `Done`).
            self.step_pairs(n)?;
            return Ok(Vec::new());
        }
        let (r_data, s_data) = (self.r_data, self.s_data);
        let (qids, comparer) = (&self.qids, &self.comparer);
        let outcomes = pprl_runtime::par_map_init(
            &pairs,
            threads,
            |worker| comparer.duplicate(worker as u64),
            |dup, _i, &(ri, si)| -> Result<(PairDecision, CostLedger), SmcError> {
                let c = dup
                    .as_mut()
                    .ok_or(SmcError::Internal("non-duplicable backend in parallel step"))?;
                let r = r_data
                    .records()
                    .get(ri as usize)
                    .ok_or(SmcError::Internal("R record index out of range"))?;
                let s = s_data
                    .records()
                    .get(si as usize)
                    .ok_or(SmcError::Internal("S record index out of range"))?;
                let mut ledger = CostLedger::new();
                let decision = match c.compare(qids, ri, si, r, s, &mut ledger)? {
                    CompareOutcome::Decided(true) => PairDecision::Matched,
                    CompareOutcome::Decided(false) => PairDecision::NonMatch,
                    CompareOutcome::Abandoned => {
                        PairDecision::Abandoned(AbandonReason::RetryExhausted)
                    }
                };
                Ok((decision, ledger))
            },
        );
        let mut events = Vec::with_capacity(pairs.len());
        for (&(ri, si), outcome) in pairs.iter().zip(outcomes) {
            let (decision, ledger) = outcome?;
            let Some(located) = self.locate_next_pair()? else {
                return Err(SmcError::Internal("parallel walk ended before its batch"));
            };
            if located != (ri, si) {
                return Err(SmcError::Internal("parallel walk diverged from its probe"));
            }
            self.session.ledger.merge(&ledger);
            self.apply_decision(ri, si, decision)?;
            events.push(PairEvent { ri, si, decision });
        }
        Ok(events)
    }

    /// Runs until every reachable pair is decided, batching comparisons
    /// across up to `threads` workers. Output (labels, stats, ledger,
    /// checkpoints) is identical to [`run_to_completion`]
    /// (Self::run_to_completion); non-parallelizable sessions fall back
    /// to it outright.
    pub fn run_to_completion_parallel(&mut self, threads: usize) -> Result<(), SmcError> {
        if threads <= 1 || !self.parallelizable() {
            return self.run_to_completion();
        }
        // Batches large enough to amortize the probe and fan-out, small
        // enough to bound peak memory (one ledger per in-flight pair).
        let batch = (threads as u64).saturating_mul(64).max(256);
        while self.step_pairs_parallel(batch, threads)? > 0 {}
        Ok(())
    }

    /// Pre-fills a shared randomizer pool (`rⁿ mod n²`, the expensive
    /// factor of every Paillier encryption) on the backend key pair,
    /// computed across `threads` workers, so subsequent encryptions cost
    /// two modular multiplications each. Returns `false` when there is
    /// nothing to pool for (oracle mode, transported sessions). Ledger
    /// accounting is unchanged either way — the pool moves *when* the
    /// exponentiations happen, not how many the protocol performs.
    pub fn prefill_randomizers(&mut self, count: usize, threads: usize, seed: u64) -> bool {
        if count == 0 || !self.parallelizable() {
            return false;
        }
        self.comparer
            .backend
            .prefill_randomizers(count, threads, seed)
    }

    /// Snapshot of the current state, suitable for serialization and a
    /// later [`SmcStep::resume`].
    pub fn checkpoint(&mut self) -> SmcSession {
        self.sync_degradation();
        self.session.elapsed_ms = self.clock.elapsed_ms();
        self.session.clone()
    }

    /// Consumes the runner and produces the report. Callable at any point;
    /// a report taken before completion reflects the progress so far.
    pub fn finish(mut self) -> SmcReport {
        self.sync_degradation();
        self.session.elapsed_ms = self.clock.elapsed_ms();
        let backend = self.comparer.backend.backend_name();
        let (clk_bits_exchanged, dp_flips) = self.comparer.backend.wire_counters();
        let mut s = self.session;
        s.ledger.invocations = s.invocations;
        SmcReport {
            budget: s.budget,
            invocations: s.invocations,
            matched_pairs: s.matched_pairs,
            leftovers: s.leftovers,
            examined: s.examined,
            suppressed_total: s.suppressed_total,
            suppressed_examined: s.suppressed_examined,
            suppressed_matched: s.suppressed_matched,
            comparator: ComparatorStats {
                backend,
                pairs_compared: s.invocations,
                clk_bits_exchanged,
                dp_flips,
            },
            ledger: s.ledger,
            degradation: s.degradation,
        }
    }

    /// Folds transport telemetry (fault stats, virtual backoff, ledger
    /// tallies) into the degradation report.
    fn sync_degradation(&mut self) {
        if let Some(stats) = self.comparer.take_fault_stats() {
            self.session.degradation.injected.merge(&stats);
        }
        self.session.degradation.virtual_backoff_ms += self.comparer.take_virtual_backoff_ms();
        self.session.degradation.retries_spent = self.session.ledger.retries;
        self.session.degradation.faults_survived =
            self.session.ledger.corrupt_dropped + self.session.ledger.duplicates_discarded;
    }

    fn compare_pair(&mut self, ri: u32, si: u32) -> Result<CompareOutcome, SmcError> {
        let (r_data, s_data) = (self.r_data, self.s_data);
        let r = r_data
            .records()
            .get(ri as usize)
            .ok_or(SmcError::Internal("R record index out of range"))?;
        let s = s_data
            .records()
            .get(si as usize)
            .ok_or(SmcError::Internal("S record index out of range"))?;
        self.comparer
            .compare(&self.qids, ri, si, r, s, &mut self.session.ledger)
    }
}

/// Advances bookkeeping-only phase transitions (leftover pushes, empty
/// classes, suppressed-group switches) until the walk rests on the next
/// comparable pair; `None` once every reachable pair is decided.
///
/// A free function over the session so the parallel driver can *probe*
/// the walk on a cloned session without touching the live runner.
fn walk_locate(
    session: &mut SmcSession,
    ordered: &[ClassPairRef],
    layout: &SuppressedLayout,
    r_view: &AnonymizedView,
    s_view: &AnonymizedView,
) -> Result<Option<(u32, u32)>, SmcError> {
    loop {
        match session.phase {
            SessionPhase::Done => return Ok(None),
            SessionPhase::Ordered { cursor, skip, .. } => {
                let Some(pref) = ordered.get(cursor as usize).copied() else {
                    session.phase = SessionPhase::Suppressed {
                        group: 0,
                        offset: 0,
                    };
                    continue;
                };
                let next_class = SessionPhase::Ordered {
                    cursor: cursor + 1,
                    skip: 0,
                    matched: 0,
                };
                // Entering a class with nothing left to spend: the
                // whole class is leftover (untouched, no stats row).
                if skip == 0 && session.invocations == session.budget {
                    session.leftovers.push(LeftoverPair {
                        class_pair: pref,
                        skip: 0,
                    });
                    session.phase = next_class;
                    continue;
                }
                // Degenerate empty class entered with budget in hand.
                if pref.pairs == 0 {
                    session.examined.push(ExaminedStats {
                        class_pair: pref,
                        examined: 0,
                        matched: 0,
                    });
                    session.phase = next_class;
                    continue;
                }
                let rc = r_view
                    .classes()
                    .get(pref.r_class as usize)
                    .ok_or(SmcError::Internal("R class index out of range"))?;
                let sc = s_view
                    .classes()
                    .get(pref.s_class as usize)
                    .ok_or(SmcError::Internal("S class index out of range"))?;
                // pref.pairs != 0 (checked above), so both row sets
                // are non-empty and the division is safe.
                let s_len = sc.rows.len() as u64;
                if s_len == 0 {
                    return Err(SmcError::Internal("empty S class with pairs > 0"));
                }
                let ri = rc
                    .rows
                    .get((skip / s_len) as usize)
                    .copied()
                    .ok_or(SmcError::Internal("R row cursor out of range"))?;
                let si = sc
                    .rows
                    .get((skip % s_len) as usize)
                    .copied()
                    .ok_or(SmcError::Internal("S row cursor out of range"))?;
                return Ok(Some((ri, si)));
            }
            SessionPhase::Suppressed { group, offset } => {
                let (ri, si, total) = {
                    let (r_rows, s_rows) = layout.group(group);
                    let total = r_rows.len() as u64 * s_rows.len() as u64;
                    if offset >= total {
                        (0, 0, total)
                    } else {
                        // offset < total implies both row sets are
                        // non-empty, so s_len > 0 and both lookups hit.
                        let s_len = s_rows.len() as u64;
                        let ri = r_rows
                            .get((offset / s_len) as usize)
                            .copied()
                            .ok_or(SmcError::Internal("suppressed R cursor out of range"))?;
                        let si = s_rows
                            .get((offset % s_len) as usize)
                            .copied()
                            .ok_or(SmcError::Internal("suppressed S cursor out of range"))?;
                        (ri, si, total)
                    }
                };
                if offset >= total {
                    session.phase = if group == 0 {
                        SessionPhase::Suppressed {
                            group: 1,
                            offset: 0,
                        }
                    } else {
                        SessionPhase::Done
                    };
                    continue;
                }
                if session.invocations == session.budget {
                    session.phase = SessionPhase::Done;
                    continue;
                }
                return Ok(Some((ri, si)));
            }
        }
    }
}

/// Applies a decision to the pair the walk currently rests on: labels,
/// degradation, budget charge, and the class-end / partial-consumption
/// bookkeeping. The deadline clock is charged by the caller ([`SmcRunner`]
/// owns it); everything here is pure session state, which is what makes
/// the walk *probe-able*: which pair comes next never depends on how the
/// previous pair was decided.
fn walk_apply(
    session: &mut SmcSession,
    ordered: &[ClassPairRef],
    strategy: LabelingStrategy,
    ri: u32,
    si: u32,
    decision: PairDecision,
) -> Result<(), SmcError> {
    match session.phase {
        SessionPhase::Done => Err(SmcError::Internal("decision applied to finished session")),
        SessionPhase::Ordered {
            cursor,
            skip,
            matched,
        } => {
            let pref = ordered
                .get(cursor as usize)
                .copied()
                .ok_or(SmcError::Internal("decision cursor out of range"))?;
            let mut matched = matched;
            match decision {
                PairDecision::Matched => {
                    matched += 1;
                    session.matched_pairs.push((ri, si));
                }
                PairDecision::NonMatch => {}
                PairDecision::Abandoned(reason) => walk_abandon(session, strategy, ri, si, reason),
            }
            let skip = skip + 1;
            session.invocations += 1;
            let next_class = SessionPhase::Ordered {
                cursor: cursor + 1,
                skip: 0,
                matched: 0,
            };
            if skip == pref.pairs {
                // Class fully consumed.
                session.examined.push(ExaminedStats {
                    class_pair: pref,
                    examined: skip,
                    matched,
                });
                session.phase = next_class;
            } else if session.invocations == session.budget {
                // Budget ran out mid-class: partial consumption.
                session.examined.push(ExaminedStats {
                    class_pair: pref,
                    examined: skip,
                    matched,
                });
                session.leftovers.push(LeftoverPair {
                    class_pair: pref,
                    skip,
                });
                session.phase = next_class;
            } else {
                session.phase = SessionPhase::Ordered {
                    cursor,
                    skip,
                    matched,
                };
            }
            Ok(())
        }
        SessionPhase::Suppressed { group, offset } => {
            match decision {
                PairDecision::Matched => {
                    session.suppressed_matched += 1;
                    session.matched_pairs.push((ri, si));
                }
                PairDecision::NonMatch => {}
                PairDecision::Abandoned(reason) => walk_abandon(session, strategy, ri, si, reason),
            }
            session.invocations += 1;
            session.suppressed_examined += 1;
            session.phase = SessionPhase::Suppressed {
                group,
                offset: offset + 1,
            };
            Ok(())
        }
    }
}

/// A pair the run gave up on (transport retries exhausted or the
/// deadline expired): charged, never matched by the protocol, decided
/// by the strategy instead. The reason is tallied for the report.
fn walk_abandon(
    session: &mut SmcSession,
    strategy: LabelingStrategy,
    ri: u32,
    si: u32,
    reason: AbandonReason,
) {
    let d = &mut session.degradation;
    d.abandoned.record(reason);
    if matches!(strategy, LabelingStrategy::MaximizeRecall) {
        d.declared.push((ri, si));
    }
}

/// How one record-pair comparison ended.
pub enum CompareOutcome {
    /// The protocol decided: match or non-match.
    Decided(bool),
    /// The transport exhausted its retries; the strategy must decide.
    Abandoned,
}

/// The job-level half of the comparison: schema, rule tables, and
/// normalization factors, plus the pluggable [`Comparator`] backend that
/// actually probes each pair.
struct Comparer {
    schema: std::sync::Arc<pprl_data::Schema>,
    rule: MatchingRule,
    /// Per-QID normalization factors (1.0 for categorical attributes).
    norms: Vec<f64>,
    backend: Box<dyn Comparator>,
}

impl Comparer {
    fn new(
        mode: SmcMode,
        channel: Option<ChannelConfig>,
        data: &DataSet,
        qids: &[usize],
        rule: &MatchingRule,
        ledger: &mut CostLedger,
        warm: Option<&Keypair>,
    ) -> Result<Self, SmcError> {
        let backend = comparator::build(mode, channel, rule, ledger, warm)?;
        let norms = qids
            .iter()
            .map(|&q| {
                data.schema()
                    .attribute(q)
                    .vgh()
                    .as_intervals()
                    .map(|h| h.norm_factor())
                    .unwrap_or(1.0)
            })
            .collect();
        Ok(Comparer {
            schema: std::sync::Arc::clone(data.schema()),
            rule: rule.clone(),
            norms,
            backend,
        })
    }

    /// An independent clone for a parallel worker. Key material and rule
    /// tables are cloned (any attached randomizer pool is shared through
    /// its `Arc`); the worker's RNG stream is re-derived from the
    /// original's state mixed with the worker index, so workers draw
    /// distinct encryption randomness. Protocol *decisions* are
    /// randomness-independent, so the labels still equal the sequential
    /// run's. `None` for backends that refuse to fork (a reliable link's
    /// frame sequencing is inherently serial; live wire counters would
    /// lose their tallies).
    fn duplicate(&self, worker: u64) -> Option<Comparer> {
        let backend = self.backend.fork(worker)?;
        Some(Comparer {
            schema: std::sync::Arc::clone(&self.schema),
            rule: self.rule.clone(),
            norms: self.norms.clone(),
            backend,
        })
    }

    /// Injected-fault tally since the last harvest (`None` off-transport).
    fn take_fault_stats(&mut self) -> Option<FaultStats> {
        self.backend.take_fault_stats()
    }

    /// Virtual backoff accumulated since the last harvest.
    fn take_virtual_backoff_ms(&mut self) -> u64 {
        self.backend.take_virtual_backoff_ms()
    }

    fn compare(
        &mut self,
        qids: &[usize],
        ri: u32,
        si: u32,
        r: &pprl_data::Record,
        s: &pprl_data::Record,
        ledger: &mut CostLedger,
    ) -> Result<CompareOutcome, SmcError> {
        let ctx = CompareCtx {
            schema: self.schema.as_ref(),
            rule: &self.rule,
            norms: &self.norms,
            qids,
        };
        self.backend.compare(&ctx, ri, si, r, s, ledger)
    }
}

/// Batched per-attribute encodings for one pair: Alice's values, Bob's
/// values, and the per-attribute failure thresholds, index-aligned.
type BatchEncoding = (Vec<u64>, Vec<u64>, Vec<u64>);

/// Encodes every decidable attribute of a record pair for the batched
/// protocol; `Ok(None)` when no attribute can fail (trivial match).
pub(crate) fn batch_encode(
    rule: &MatchingRule,
    qids: &[usize],
    r: &pprl_data::Record,
    s: &pprl_data::Record,
    norms: &[f64],
) -> Result<Option<BatchEncoding>, SmcError> {
    let mut a_vals = Vec::with_capacity(qids.len());
    let mut b_vals = Vec::with_capacity(qids.len());
    let mut thresholds = Vec::with_capacity(qids.len());
    for (pos, &q) in qids.iter().enumerate() {
        let (a, b, t) = encode_attribute(rule, pos, r.value(q), s.value(q), norms)?;
        if t == u64::MAX {
            continue; // θ ≥ 1: attribute can never fail
        }
        a_vals.push(a);
        b_vals.push(b);
        thresholds.push(t);
    }
    if a_vals.is_empty() {
        Ok(None)
    } else {
        Ok(Some((a_vals, b_vals, thresholds)))
    }
}

/// Encodes one attribute comparison as integers for the Paillier protocol:
/// values `a, b` and squared threshold `t` such that the predicate is
/// `(a − b)² ≤ t`. Returns `t = u64::MAX` when the attribute can never
/// fail (θ ≥ 1 under Hamming). Edit distance is rejected at construction,
/// so seeing it here means the rule tables are inconsistent with the
/// session — an internal error, not a panic.
pub(crate) fn encode_attribute(
    rule: &MatchingRule,
    pos: usize,
    rv: Value,
    sv: Value,
    norms: &[f64],
) -> Result<(u64, u64, u64), SmcError> {
    let theta = *rule
        .thetas
        .get(pos)
        .ok_or(SmcError::Internal("theta index out of range"))?;
    let distance = rule
        .distances
        .get(pos)
        .ok_or(SmcError::Internal("distance index out of range"))?;
    match distance {
        AttrDistance::Hamming => {
            if theta >= 1.0 {
                Ok((0, 0, u64::MAX))
            } else {
                Ok((rv.as_cat() as u64, sv.as_cat() as u64, 0))
            }
        }
        AttrDistance::NormalizedEuclidean => {
            let norm = *norms
                .get(pos)
                .ok_or(SmcError::Internal("norm index out of range"))?;
            let a = (rv.as_num() * NUM_SCALE).round() as u64;
            let b = (sv.as_num() * NUM_SCALE).round() as u64;
            let limit = theta * norm * NUM_SCALE;
            Ok((a, b, (limit * limit).floor() as u64))
        }
        AttrDistance::NormalizedEdit => {
            Err(SmcError::Internal("edit distance rejected at construction"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
    use pprl_blocking::{records_match, BlockingEngine};
    use pprl_data::synth::{generate, SynthConfig};

    const QIDS: [usize; 5] = [0, 1, 2, 3, 4];

    struct Fixture {
        a: DataSet,
        b: DataSet,
        va: AnonymizedView,
        vb: AnonymizedView,
        unknown: Vec<ClassPairRef>,
        rule: MatchingRule,
        total: u64,
    }

    fn fixture(n: usize) -> Fixture {
        let a = generate(&SynthConfig {
            records: n,
            seed: 71,
        });
        let b = generate(&SynthConfig {
            records: n,
            seed: 72,
        });
        let anon = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(8));
        let va = anon.anonymize(&a, &QIDS).unwrap();
        let vb = anon.anonymize(&b, &QIDS).unwrap();
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let out = BlockingEngine::new(rule.clone()).run(&va, &vb).unwrap();
        Fixture {
            total: out.total_pairs,
            unknown: out.unknown,
            a,
            b,
            va,
            vb,
            rule,
        }
    }

    fn step(allowance: SmcAllowance) -> SmcStep {
        SmcStep {
            heuristic: SelectionHeuristic::MinAvgFirst,
            allowance,
            strategy: LabelingStrategy::MaximizePrecision,
            mode: SmcMode::Oracle,
            channel: None,
            deadline: DeadlineBudget::None,
        }
    }

    #[test]
    fn budget_is_respected_with_partial_consumption() {
        let f = fixture(200);
        let budget = 500u64;
        let report = step(SmcAllowance::Pairs(budget))
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert!(report.invocations <= budget);
        let unknown_total: u64 = f.unknown.iter().map(|p| p.pairs).sum();
        if unknown_total > budget {
            assert_eq!(report.invocations, budget, "budget fully spent");
            assert!(!report.leftovers.is_empty());
        }
        // Examined + leftover = all unknown pairs.
        let leftover_pairs: u64 = report
            .leftovers
            .iter()
            .map(|l| l.class_pair.pairs - l.skip)
            .sum();
        assert_eq!(report.invocations + leftover_pairs, unknown_total);
    }

    #[test]
    fn unlimited_budget_clears_all_unknowns() {
        let f = fixture(150);
        let report = step(SmcAllowance::Unlimited)
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert!(report.leftovers.is_empty());
        let unknown_total: u64 = f.unknown.iter().map(|p| p.pairs).sum();
        assert_eq!(report.invocations, unknown_total);
    }

    #[test]
    fn smc_matches_are_true_matches() {
        let f = fixture(150);
        let report = step(SmcAllowance::Unlimited)
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        for &(ri, si) in &report.matched_pairs {
            assert!(records_match(
                f.a.schema(),
                &QIDS,
                &f.rule,
                &f.a.records()[ri as usize],
                &f.b.records()[si as usize]
            ));
        }
    }

    #[test]
    fn paillier_mode_agrees_with_oracle() {
        // Small slice so real crypto stays fast: limit to 40 comparisons.
        let f = fixture(80);
        let oracle = step(SmcAllowance::Pairs(40))
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let mut crypto_step = step(SmcAllowance::Pairs(40));
        crypto_step.mode = SmcMode::Paillier {
            modulus_bits: 256,
            seed: 5,
        };
        let crypto = crypto_step
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert_eq!(oracle.matched_pairs, crypto.matched_pairs);
        assert_eq!(oracle.invocations, crypto.invocations);
        assert!(crypto.ledger.encryptions > 0, "real crypto ran");
        assert_eq!(oracle.ledger.encryptions, 0, "oracle is crypto-free");
    }

    #[test]
    fn batched_paillier_agrees_with_oracle_and_counts_messages() {
        let f = fixture(80);
        let oracle = step(SmcAllowance::Pairs(30))
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let mut batched = step(SmcAllowance::Pairs(30));
        batched.mode = SmcMode::PaillierBatched {
            modulus_bits: 256,
            seed: 5,
            pack: false,
        };
        let got = batched
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert_eq!(oracle.matched_pairs, got.matched_pairs);
        // Exactly two framed messages per record-pair comparison.
        assert_eq!(got.ledger.messages, 2 * got.invocations);
        assert!(got.ledger.bytes > 0);
    }

    #[test]
    fn edit_distance_rejected_in_paillier_mode() {
        let f = fixture(50);
        let mut rule = f.rule.clone();
        rule.distances[1] = AttrDistance::NormalizedEdit;
        let mut s = step(SmcAllowance::Pairs(10));
        s.mode = SmcMode::Paillier {
            modulus_bits: 256,
            seed: 1,
        };
        let err = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &rule, f.total)
            .unwrap_err();
        assert!(matches!(err, SmcError::UnsupportedDistance(_)));
    }

    #[test]
    fn zero_budget_leaves_everything() {
        let f = fixture(100);
        let report = step(SmcAllowance::Pairs(0))
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert_eq!(report.invocations, 0);
        assert_eq!(report.leftovers.len(), f.unknown.len());
        assert!(report.matched_pairs.is_empty());
    }

    #[test]
    fn stepwise_execution_equals_one_shot() {
        let f = fixture(150);
        let s = step(SmcAllowance::Pairs(400));
        let full = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let mut runner = s
            .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        while runner.step_pairs(7).unwrap() > 0 {}
        assert!(runner.is_done());
        assert_eq!(runner.finish(), full);
    }

    #[test]
    fn checkpoint_resume_equals_one_shot() {
        let f = fixture(150);
        let s = step(SmcAllowance::Pairs(300));
        let full = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        // Interrupt after every 11 pairs; resume from the snapshot.
        let mut snapshot: Option<SmcSession> = None;
        let resumed = loop {
            let mut runner = match snapshot.take() {
                None => s
                    .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
                    .unwrap(),
                Some(session) => s
                    .resume(session, &f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
                    .unwrap(),
            };
            if runner.step_pairs(11).unwrap() == 0 {
                break runner.finish();
            }
            snapshot = Some(runner.checkpoint());
        };
        assert_eq!(resumed, full);
    }

    #[test]
    fn resume_rejects_mismatched_budget() {
        let f = fixture(80);
        let s = step(SmcAllowance::Pairs(50));
        let mut runner = s
            .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        runner.step_pairs(5).unwrap();
        let snapshot = runner.checkpoint();
        let other = step(SmcAllowance::Pairs(60));
        // `unwrap_err` would require `SmcRunner: Debug`, which the runner
        // deliberately does not implement (it holds key material).
        let err = match other.resume(snapshot, &f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
        {
            Err(e) => e,
            Ok(_) => panic!("resume with a mismatched budget must fail"),
        };
        assert!(matches!(err, SmcError::SessionMismatch(_)));
    }

    #[test]
    fn session_snapshot_roundtrips_through_the_wire_codec() {
        let f = fixture(100);
        let s = step(SmcAllowance::Pairs(120));
        let mut runner = s
            .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        runner.step_pairs(37).unwrap();
        let snapshot = runner.checkpoint();
        let bytes = crate::codec::encode_session(&snapshot);
        let back: SmcSession = crate::codec::decode_session(&bytes).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn virtual_deadline_abandons_remaining_pairs_without_losing_precision() {
        let f = fixture(150);
        let full = step(SmcAllowance::Unlimited)
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let unknown_total: u64 = f.unknown.iter().map(|p| p.pairs).sum();
        let compared = 7u64;
        let mut s = step(SmcAllowance::Unlimited);
        s.deadline = DeadlineBudget::VirtualMs {
            budget_ms: compared,
            cost_per_pair_ms: 1,
        };
        let report = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        // Every in-allowance pair is still walked and charged; the ones
        // past the deadline are abandoned instead of compared.
        assert_eq!(report.invocations, unknown_total);
        let tally = &report.degradation.abandoned;
        assert_eq!(tally.deadline_expired, unknown_total - compared);
        assert_eq!(tally.retry_exhausted, 0);
        assert_eq!(report.degradation.pairs_abandoned(), tally.total());
        // Maximize-precision labels abandoned pairs non-match, so every
        // declared match is one the unlimited run also found.
        for pair in &report.matched_pairs {
            assert!(full.matched_pairs.contains(pair));
        }
        // Deadline-abandoned pairs are never declared under this strategy.
        assert!(report.degradation.declared.is_empty());
    }

    #[test]
    fn deadline_survives_checkpoint_resume() {
        let f = fixture(150);
        let compared = 5u64;
        let mut s = step(SmcAllowance::Unlimited);
        s.deadline = DeadlineBudget::VirtualMs {
            budget_ms: compared,
            cost_per_pair_ms: 1,
        };
        let full = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        // Interrupt every 3 pairs: virtual elapsed time must persist in
        // the snapshot or the resumed run would win extra comparisons.
        let mut snapshot: Option<SmcSession> = None;
        let resumed = loop {
            let mut runner = match snapshot.take() {
                None => s
                    .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
                    .unwrap(),
                Some(session) => s
                    .resume(session, &f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
                    .unwrap(),
            };
            if runner.step_pairs(3).unwrap() == 0 {
                break runner.finish();
            }
            snapshot = Some(runner.checkpoint());
        };
        assert_eq!(resumed, full);
    }

    #[test]
    fn event_replay_reconstructs_the_live_run_without_reexecution() {
        let f = fixture(150);
        let s = step(SmcAllowance::Pairs(300));
        let mut live = s
            .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let mut events = Vec::new();
        while let Some(ev) = live.step_pair_event().unwrap() {
            events.push(ev);
        }
        assert_eq!(live.replayed_pairs(), 0);
        let live_report = live.finish();
        assert!(!events.is_empty());

        let mut replayed = s
            .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        for ev in &events {
            replayed.replay_pair_event(ev).unwrap();
        }
        assert_eq!(replayed.replayed_pairs(), events.len() as u64);
        assert!(replayed.is_done());
        assert_eq!(replayed.finish(), live_report);
    }

    #[test]
    fn replay_rejects_a_diverged_event() {
        let f = fixture(100);
        let s = step(SmcAllowance::Pairs(50));
        let mut live = s
            .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let ev = live.step_pair_event().unwrap().expect("at least one pair");
        let mut other = s
            .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let bogus = PairEvent {
            ri: ev.ri.wrapping_add(1),
            si: ev.si,
            decision: ev.decision,
        };
        let err = other.replay_pair_event(&bogus).unwrap_err();
        assert!(matches!(err, SmcError::SessionMismatch(_)));
    }

    #[test]
    fn parallel_run_equals_sequential_at_any_thread_count() {
        let f = fixture(150);
        let s = step(SmcAllowance::Pairs(400));
        let full = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        for threads in [2usize, 3, 4, 8] {
            let mut runner = s
                .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
                .unwrap();
            assert!(runner.parallelizable());
            runner.run_to_completion_parallel(threads).unwrap();
            assert!(runner.is_done());
            assert_eq!(runner.finish(), full, "threads={threads}");
        }
    }

    #[test]
    fn parallel_paillier_with_pool_equals_sequential_report() {
        let f = fixture(80);
        let mut s = step(SmcAllowance::Pairs(30));
        s.mode = SmcMode::PaillierBatched {
            modulus_bits: 256,
            seed: 5,
            pack: false,
        };
        let full = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let mut runner = s
            .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert!(runner.prefill_randomizers(64, 4, 17), "pool engages");
        runner.run_to_completion_parallel(4).unwrap();
        // Labels AND the cost ledger are identical: pooling moves when
        // the exponentiations happen, not how many the protocol counts.
        assert_eq!(runner.finish(), full);
    }

    #[test]
    fn armed_deadline_disables_parallelism_but_stays_correct() {
        let f = fixture(120);
        let mut s = step(SmcAllowance::Unlimited);
        s.deadline = DeadlineBudget::VirtualMs {
            budget_ms: 9,
            cost_per_pair_ms: 1,
        };
        let full = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        let mut runner = s
            .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        assert!(!runner.parallelizable(), "deadline forces the serial path");
        runner.run_to_completion_parallel(8).unwrap();
        assert_eq!(runner.finish(), full);
    }

    #[test]
    fn parallel_batches_interleave_with_checkpoints() {
        let f = fixture(150);
        let s = step(SmcAllowance::Pairs(300));
        let full = s
            .run(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
            .unwrap();
        // Decide 13 pairs per parallel batch, checkpoint + resume between
        // batches: the snapshot protocol is batch-size agnostic.
        let mut snapshot: Option<SmcSession> = None;
        let resumed = loop {
            let mut runner = match snapshot.take() {
                None => s
                    .start(&f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
                    .unwrap(),
                Some(session) => s
                    .resume(session, &f.a, &f.b, &f.va, &f.vb, &f.unknown, &f.rule, f.total)
                    .unwrap(),
            };
            if runner.step_pairs_parallel(13, 4).unwrap() == 0 {
                break runner.finish();
            }
            snapshot = Some(runner.checkpoint());
        };
        assert_eq!(resumed, full);
    }
}
