//! Expected-distance functions (paper §V-C, Eq. 1–8).
//!
//! With no released statistics, original values are modeled as uniform and
//! independent over their specialization sets. For discrete attributes the
//! derivation (Eq. 1–5) collapses to
//!
//! ```text
//! ED = 1 − |V ∩ W| / (|V| · |W|)
//! ```
//!
//! and for continuous attributes the expected *squared* distance (Eq. 6–8)
//! over `V ~ U[a₁, b₁]`, `W ~ U[a₂, b₂]` is
//!
//! ```text
//! ED = ⅓ (a₁² + b₁² + a₂² + b₂² + a₁b₁ + a₂b₂) − ½ (a₁ + b₁)(a₂ + b₂)
//! ```
//!
//! Continuous values are normalized by the domain width (so the squared
//! distance divides by `norm²`), keeping attribute-wise EDs comparable when
//! heuristics aggregate across attribute kinds.

use pprl_anon::GenVal;
use pprl_blocking::{edit_distance, AttrDistance};
use pprl_hierarchy::Vgh;

/// Expected distance when the rule's distance kind disagrees with the VGH
/// or value kind. That agreement is a construction-time invariant of
/// `MatchingRule` — a mismatch is a local coding bug, never reachable from
/// wire input — so debug builds assert, and release builds degrade to the
/// maximal normalized distance (treat the pair as a certain non-match)
/// rather than panicking inside a long-running linkage.
const KIND_MISMATCH_ED: f64 = 1.0;

/// Expected distance between two generalized values of one attribute.
pub fn expected_distance(vgh: &Vgh, dist: AttrDistance, a: &GenVal, b: &GenVal) -> f64 {
    match dist {
        AttrDistance::Hamming => {
            let (Some(t), &GenVal::Cat(na), &GenVal::Cat(nb)) = (vgh.as_taxonomy(), a, b) else {
                debug_assert!(false, "Hamming distance over a non-categorical attribute");
                return KIND_MISMATCH_ED;
            };
            let v = t.spec_set_size(na) as f64;
            let w = t.spec_set_size(nb) as f64;
            let overlap = t.spec_set_overlap(na, nb) as f64;
            1.0 - overlap / (v * w)
        }
        AttrDistance::NormalizedEuclidean => {
            let (Some(h), &GenVal::Range { lo: a1, hi: b1 }, &GenVal::Range { lo: a2, hi: b2 }) =
                (vgh.as_intervals(), a, b)
            else {
                debug_assert!(false, "Euclidean distance over a non-continuous attribute");
                return KIND_MISMATCH_ED;
            };
            let ed = expected_squared(a1, b1, a2, b2);
            ed / (h.norm_factor() * h.norm_factor())
        }
        AttrDistance::NormalizedEdit => {
            let (Some(t), &GenVal::Cat(na), &GenVal::Cat(nb)) = (vgh.as_taxonomy(), a, b) else {
                debug_assert!(false, "edit distance over a non-categorical attribute");
                return KIND_MISMATCH_ED;
            };
            let norm = max_label_len(t) as f64;
            let mut sum = 0.0;
            let mut count = 0.0;
            for pa in t.leaves_under(na) {
                let la = t.label(t.leaf_node(pa));
                for pb in t.leaves_under(nb) {
                    let lb = t.label(t.leaf_node(pb));
                    sum += edit_distance(la, lb) as f64 / norm;
                    count += 1.0;
                }
            }
            sum / count
        }
    }
}

/// Eq. 8: `E[(V − W)²]` for independent uniforms on `[a₁,b₁]`, `[a₂,b₂]`.
pub fn expected_squared(a1: f64, b1: f64, a2: f64, b2: f64) -> f64 {
    (a1 * a1 + b1 * b1 + a2 * a2 + b2 * b2 + a1 * b1 + a2 * b2) / 3.0
        - (a1 + b1) * (a2 + b2) / 2.0
}

/// The full ED vector for a pair of generalization sequences. Zipped
/// iteration (rather than indexing) means a length mismatch truncates to
/// the shortest input instead of panicking.
pub fn expected_vector(
    vghs: &[&Vgh],
    distances: &[AttrDistance],
    a: &[GenVal],
    b: &[GenVal],
) -> Vec<f64> {
    vghs.iter()
        .zip(distances.iter())
        .zip(a.iter().zip(b.iter()))
        .map(|((vgh, dist), (ga, gb))| expected_distance(vgh, *dist, ga, gb))
        .collect()
}

fn max_label_len(t: &pprl_hierarchy::Taxonomy) -> usize {
    (0..t.leaf_count() as u32)
        .map(|p| t.label(t.leaf_node(p)).chars().count())
        .max()
        .unwrap_or(1)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_hierarchy::{IntervalHierarchy, TaxSpec, Taxonomy};
    use rand::Rng;
    use rand::SeedableRng;

    fn tax() -> Taxonomy {
        Taxonomy::from_spec(
            "t",
            &TaxSpec::node(
                "ANY",
                vec![
                    TaxSpec::node("L", vec![TaxSpec::leaf("a"), TaxSpec::leaf("b")]),
                    TaxSpec::node("R", vec![TaxSpec::leaf("c"), TaxSpec::leaf("d")]),
                ],
            ),
        )
        .unwrap()
    }

    #[test]
    fn hamming_ed_formula_cases() {
        let t = tax();
        let vgh = Vgh::Categorical(t);
        let t = vgh.as_taxonomy().unwrap();
        let a_leaf = t.node_by_label("a").unwrap();
        let l = t.node_by_label("L").unwrap();
        let r = t.node_by_label("R").unwrap();
        let any = t.root();
        let ed = |x, y| {
            expected_distance(&vgh, AttrDistance::Hamming, &GenVal::Cat(x), &GenVal::Cat(y))
        };
        assert_eq!(ed(a_leaf, a_leaf), 0.0); // identical singletons
        assert_eq!(ed(l, r), 1.0); // disjoint sets
        assert!((ed(l, l) - 0.5).abs() < 1e-12); // 1 - 2/(2·2)
        assert!((ed(any, a_leaf) - 0.75).abs() < 1e-12); // 1 - 1/4
        assert!((ed(any, any) - 0.75).abs() < 1e-12); // 1 - 4/16
    }

    #[test]
    fn eq8_matches_monte_carlo() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for (a1, b1, a2, b2) in [
            (0.0, 1.0, 0.0, 1.0),
            (0.0, 8.0, 24.0, 32.0),
            (10.0, 20.0, 15.0, 40.0),
        ] {
            let analytic = expected_squared(a1, b1, a2, b2);
            let n = 200_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let v = a1 + (b1 - a1) * rng.gen::<f64>();
                let w = a2 + (b2 - a2) * rng.gen::<f64>();
                sum += (v - w) * (v - w);
            }
            let mc = sum / n as f64;
            assert!(
                (analytic - mc).abs() / analytic.max(1e-9) < 0.02,
                "analytic {analytic}, MC {mc} for ({a1},{b1})x({a2},{b2})"
            );
        }
    }

    #[test]
    fn identical_point_intervals_have_zero_ed() {
        assert!(expected_squared(5.0, 5.0, 5.0, 5.0).abs() < 1e-12);
    }

    #[test]
    fn continuous_ed_is_normalized() {
        let h = IntervalHierarchy::equi_width("x", 0.0, 100.0, &[2]).unwrap();
        let vgh = Vgh::Continuous(h);
        let full = GenVal::Range { lo: 0.0, hi: 100.0 };
        let ed = expected_distance(&vgh, AttrDistance::NormalizedEuclidean, &full, &full);
        // E[(V-W)^2] over U[0,100]^2 = 100^2/6; normalized → 1/6.
        assert!((ed - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn edit_ed_averages_leaf_pairs() {
        let t = Taxonomy::flat("s", ["ab", "ax"]).unwrap();
        let vgh = Vgh::Categorical(t);
        let t = vgh.as_taxonomy().unwrap();
        let any = t.root();
        let ab = t.node_by_label("ab").unwrap();
        // pairs (ab,ab)=0, (ab,ax)=1 → mean 0.5, normalized by len 2 → 0.25.
        let ed = expected_distance(
            &vgh,
            AttrDistance::NormalizedEdit,
            &GenVal::Cat(any),
            &GenVal::Cat(ab),
        );
        assert!((ed - 0.25).abs() < 1e-12);
    }
}
