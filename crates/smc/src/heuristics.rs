//! Selection heuristics for circuit evaluation (paper §V-C / §VI).
//!
//! All record pairs inside one unknown class pair share the same expected-
//! distance vector, so ordering happens at class-pair granularity — the
//! paper's observation that "groups of record pairs … will be classified
//! similarly" turned into an efficiency win.

use crate::expected::expected_vector;
use pprl_anon::AnonymizedView;
use pprl_blocking::{ClassPairRef, MatchingRule};
use pprl_hierarchy::Vgh;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The orderings evaluated in §VI (Fig. 4–8 series) plus the random
/// selection §V-B's strategy 3 calls for.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SelectionHeuristic {
    /// Minimum attribute-wise expected distance first.
    MinFirst,
    /// Maximum attribute-wise expected distance last
    /// (ascending by the max-ED coordinate).
    MaxLast,
    /// Minimum *average* attribute-wise expected distance first.
    MinAvgFirst,
    /// Uniformly random order (seeded for reproducibility).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

impl std::fmt::Display for SelectionHeuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionHeuristic::MinFirst => write!(f, "MinFirst"),
            SelectionHeuristic::MaxLast => write!(f, "MaxLast"),
            SelectionHeuristic::MinAvgFirst => write!(f, "MinAvgFirst"),
            SelectionHeuristic::Random { .. } => write!(f, "Random"),
        }
    }
}

/// Orders the unknown class pairs for SMC processing, most promising first.
pub fn order_unknown(
    r_view: &AnonymizedView,
    s_view: &AnonymizedView,
    unknown: &[ClassPairRef],
    rule: &MatchingRule,
    heuristic: SelectionHeuristic,
) -> Vec<ClassPairRef> {
    let mut ordered: Vec<ClassPairRef> = unknown.to_vec();
    if let SelectionHeuristic::Random { seed } = heuristic {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        ordered.shuffle(&mut rng);
        return ordered;
    }

    let schema = r_view.schema();
    let vghs: Vec<&Vgh> = r_view
        .qids()
        .iter()
        .map(|&q| schema.attribute(q).vgh())
        .collect();

    let mut keyed: Vec<(f64, ClassPairRef)> = ordered
        .into_iter()
        .map(|pref| {
            // A pair referencing a class outside either view is corrupt
            // input; rank it last rather than panicking.
            let (Some(rc), Some(sc)) = (
                r_view.classes().get(pref.r_class as usize),
                s_view.classes().get(pref.s_class as usize),
            ) else {
                return (f64::INFINITY, pref);
            };
            let eds = expected_vector(&vghs, &rule.distances, &rc.sequence, &sc.sequence);
            let key = match heuristic {
                SelectionHeuristic::MinFirst => {
                    eds.iter().copied().fold(f64::INFINITY, f64::min)
                }
                SelectionHeuristic::MaxLast => {
                    eds.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                }
                SelectionHeuristic::MinAvgFirst => {
                    eds.iter().sum::<f64>() / eds.len().max(1) as f64
                }
                // Unreachable in practice — Random returns early above —
                // but a neutral key is harmless where a panic is not.
                SelectionHeuristic::Random { .. } => 0.0,
            };
            (key, pref)
        })
        .collect();

    // Ascending key; deterministic tie-break on class indices.
    keyed.sort_by(|(ka, pa), (kb, pb)| {
        ka.total_cmp(kb)
            .then(pa.r_class.cmp(&pb.r_class))
            .then(pa.s_class.cmp(&pb.s_class))
    });
    keyed.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
    use pprl_blocking::BlockingEngine;
    use pprl_data::synth::{generate, SynthConfig};

    const QIDS: [usize; 5] = [0, 1, 2, 3, 4];

    fn setup() -> (AnonymizedView, AnonymizedView, Vec<ClassPairRef>, MatchingRule) {
        let a = generate(&SynthConfig {
            records: 250,
            seed: 61,
        });
        let b = generate(&SynthConfig {
            records: 250,
            seed: 62,
        });
        let anon = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(8));
        let va = anon.anonymize(&a, &QIDS).unwrap();
        let vb = anon.anonymize(&b, &QIDS).unwrap();
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let out = BlockingEngine::new(rule.clone()).run(&va, &vb).unwrap();
        assert!(!out.unknown.is_empty(), "need U pairs to order");
        (va, vb, out.unknown, rule)
    }

    #[test]
    fn orderings_are_permutations() {
        let (va, vb, unknown, rule) = setup();
        for h in [
            SelectionHeuristic::MinFirst,
            SelectionHeuristic::MaxLast,
            SelectionHeuristic::MinAvgFirst,
            SelectionHeuristic::Random { seed: 3 },
        ] {
            let ordered = order_unknown(&va, &vb, &unknown, &rule, h);
            assert_eq!(ordered.len(), unknown.len(), "{h}");
            let mut a: Vec<_> = ordered.iter().map(|p| (p.r_class, p.s_class)).collect();
            let mut b: Vec<_> = unknown.iter().map(|p| (p.r_class, p.s_class)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{h} must permute the input");
        }
    }

    #[test]
    fn min_avg_first_is_sorted_by_mean_ed() {
        let (va, vb, unknown, rule) = setup();
        let ordered = order_unknown(&va, &vb, &unknown, &rule, SelectionHeuristic::MinAvgFirst);
        let schema = va.schema();
        let vghs: Vec<&Vgh> = QIDS.iter().map(|&q| schema.attribute(q).vgh()).collect();
        let mean = |p: &ClassPairRef| {
            let eds = expected_vector(
                &vghs,
                &rule.distances,
                &va.classes()[p.r_class as usize].sequence,
                &vb.classes()[p.s_class as usize].sequence,
            );
            eds.iter().sum::<f64>() / eds.len() as f64
        };
        for w in ordered.windows(2) {
            assert!(mean(&w[0]) <= mean(&w[1]) + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let (va, vb, unknown, rule) = setup();
        let o1 = order_unknown(&va, &vb, &unknown, &rule, SelectionHeuristic::MinFirst);
        let o2 = order_unknown(&va, &vb, &unknown, &rule, SelectionHeuristic::MinFirst);
        assert_eq!(
            o1.iter().map(|p| (p.r_class, p.s_class)).collect::<Vec<_>>(),
            o2.iter().map(|p| (p.r_class, p.s_class)).collect::<Vec<_>>()
        );
        // Random with the same seed is deterministic too.
        let r1 = order_unknown(&va, &vb, &unknown, &rule, SelectionHeuristic::Random { seed: 9 });
        let r2 = order_unknown(&va, &vb, &unknown, &rule, SelectionHeuristic::Random { seed: 9 });
        assert_eq!(
            r1.iter().map(|p| (p.r_class, p.s_class)).collect::<Vec<_>>(),
            r2.iter().map(|p| (p.r_class, p.s_class)).collect::<Vec<_>>()
        );
    }
}
