//! # pprl-smc — the SMC step (paper §V)
//!
//! The blocking step leaves a set of *unknown* (U) class pairs. This crate
//! decides how the bounded cryptographic budget is spent on them:
//!
//! 1. [`expected`] — the expected-distance functions of §V-C (Eq. 1–8),
//!    computed from generalization sequences under the uniform-distribution
//!    assumption ("participants would not (and should not) release any
//!    statistics on the distribution of original values").
//! 2. [`SelectionHeuristic`] — the orderings evaluated in §VI:
//!    `MinFirst`, `MaxLast`, `MinAvgFirst` (plus `Random`, which §V-B's
//!    strategy 3 requires).
//! 3. [`SmcAllowance`] — the cost cap, expressed as the paper does: a
//!    percentage of all `|R|·|S|` record pairs.
//! 4. [`executor`] — spends the budget, class pair by class pair (with
//!    partial consumption of the pair that straddles the limit), using
//!    either the real Paillier protocol or the plaintext oracle (provably
//!    equivalent; see `DESIGN.md` substitution 2).
//! 5. [`LabelingStrategy`] — §V-B's three options for the pairs the budget
//!    never reaches; the paper adopts *maximize precision* (label them
//!    non-match), which guarantees 100 % precision.
//!
//! ```
//! use pprl_smc::SmcAllowance;
//!
//! // The paper's default: 1.5 % of the |R|·|S| pair space.
//! let allowance = SmcAllowance::paper_default();
//! assert_eq!(allowance.budget_pairs(404_331_664), 6_064_974);
//! ```

mod allowance;
pub mod codec;
pub mod comparator;
mod deadline;
pub mod executor;
pub mod expected;
mod heuristics;
mod strategy;

pub use allowance::SmcAllowance;
pub use codec::{decode_session, encode_session};
pub use comparator::{clk_encode_side, clk_record_fields, CompareCtx, Comparator, ComparatorStats};
pub use deadline::DeadlineBudget;
pub use executor::{
    AbandonReason, AbandonTally, ChannelConfig, CompareOutcome, DegradationReport, EncodedPair,
    ExaminedStats, LeftoverPair, PairDecision, PairEvent, RemoteParty, SessionPhase, SmcMode,
    SmcReport, SmcRunner, SmcSession, SmcStep, WalkedClk, WalkedPair,
};
pub use heuristics::{order_unknown, SelectionHeuristic};
pub use strategy::{label_leftovers, LabelingStrategy};

// Transport-layer knobs surfaced so downstream crates can configure a
// [`ChannelConfig`] without depending on pprl-crypto directly.
pub use pprl_crypto::protocol::retry::RetryPolicy;
pub use pprl_crypto::protocol::transport::{FaultConfig, FaultStats};

/// Errors from the SMC step.
#[derive(Debug)]
pub enum SmcError {
    /// The Paillier protocol cannot evaluate this distance securely
    /// (edit distance needs a garbled-circuit protocol; oracle mode
    /// supports it for experimentation).
    UnsupportedDistance(&'static str),
    /// Crypto-layer failure.
    Crypto(pprl_crypto::CryptoError),
    /// Unrecoverable transport failure during session setup (the key
    /// broadcast); per-pair transport failures degrade instead of erroring.
    Transport(pprl_crypto::protocol::transport::TransportError),
    /// A checkpointed [`SmcSession`] does not fit the inputs or
    /// configuration it was asked to resume against.
    SessionMismatch(String),
    /// An internal invariant did not hold (an index derived from session
    /// state fell outside its table). Replaces panics on protocol paths:
    /// corrupted session state must surface as an error, not an abort.
    Internal(&'static str),
}

impl std::fmt::Display for SmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmcError::UnsupportedDistance(d) => {
                write!(f, "distance {d} not supported by the SMC protocol")
            }
            SmcError::Crypto(e) => write!(f, "crypto error: {e}"),
            SmcError::Transport(e) => write!(f, "transport error: {e}"),
            SmcError::SessionMismatch(why) => write!(f, "session mismatch: {why}"),
            SmcError::Internal(why) => write!(f, "internal invariant violated: {why}"),
        }
    }
}

impl std::error::Error for SmcError {}

impl From<pprl_crypto::CryptoError> for SmcError {
    fn from(e: pprl_crypto::CryptoError) -> Self {
        SmcError::Crypto(e)
    }
}

impl From<pprl_crypto::protocol::transport::TransportError> for SmcError {
    fn from(e: pprl_crypto::protocol::transport::TransportError) -> Self {
        SmcError::Transport(e)
    }
}
