//! Labeling strategies for the pairs the SMC budget never reaches
//! (paper §V-B).

use crate::executor::{ExaminedStats, LeftoverPair};
use pprl_blocking::PairLabel;
use serde::{Deserialize, Serialize};

/// §V-B's three options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelingStrategy {
    /// Strategy 1 — label leftovers *non-match*. "Since privacy is our
    /// primary concern, we choose to follow the first strategy": no
    /// false positives, 100 % precision, recall bounded by the budget.
    MaximizePrecision,
    /// Strategy 2 — label leftovers *match*. Recall is 1 but precision
    /// collapses (and privacy with it: irrelevant pairs get disclosed).
    MaximizeRecall,
    /// Strategy 3 — train a classifier on the SMC-labeled sample (random
    /// selection) and let it label leftover class pairs. As the paper
    /// argues intuitively, anonymized features cannot discriminate pairs
    /// sharing a generalization, so both precision and recall stay low.
    Classifier,
}

/// Labels each leftover class pair according to the strategy.
///
/// `leftover_scores` supplies the classifier feature (average expected
/// distance) per leftover, aligned by index; `examined` with per-class
/// match rates is the training sample (with feature scores aligned via
/// `examined_scores`).
pub fn label_leftovers(
    strategy: LabelingStrategy,
    leftovers: &[LeftoverPair],
    leftover_scores: &[f64],
    examined: &[ExaminedStats],
    examined_scores: &[f64],
) -> Vec<PairLabel> {
    debug_assert_eq!(leftovers.len(), leftover_scores.len());
    debug_assert_eq!(examined.len(), examined_scores.len());
    match strategy {
        LabelingStrategy::MaximizePrecision => {
            vec![PairLabel::NonMatch; leftovers.len()]
        }
        LabelingStrategy::MaximizeRecall => vec![PairLabel::Match; leftovers.len()],
        LabelingStrategy::Classifier => {
            let tau = train_threshold(examined, examined_scores);
            leftover_scores
                .iter()
                .map(|&score| {
                    if score <= tau {
                        PairLabel::Match
                    } else {
                        PairLabel::NonMatch
                    }
                })
                .collect()
        }
    }
}

/// 1-D threshold learner: choose the expected-distance cut that minimizes
/// weighted training error on the SMC-labeled sample. With no sample (or a
/// sample with no matches) the threshold is −∞, labeling everything
/// non-match.
fn train_threshold(examined: &[ExaminedStats], scores: &[f64]) -> f64 {
    // Each examined class pair contributes (score, matched, mismatched).
    let mut points: Vec<(f64, u64, u64)> = examined
        .iter()
        .zip(scores)
        .filter(|(e, _)| e.examined > 0)
        .map(|(e, &s)| (s, e.matched, e.examined - e.matched))
        .collect();
    if points.iter().all(|&(_, m, _)| m == 0) {
        return f64::NEG_INFINITY;
    }
    points.sort_by(|a, b| a.0.total_cmp(&b.0));

    let total_matched: u64 = points.iter().map(|p| p.1).sum();
    let total_mismatched: u64 = points.iter().map(|p| p.2).sum();

    // Sweep candidate cuts after each point: error = matches above cut
    // (missed) + mismatches at/below cut (false positives).
    let mut best = (total_matched, f64::NEG_INFINITY); // cut below everything
    let mut seen_matched = 0u64;
    let mut seen_mismatched = 0u64;
    for &(score, m, n) in &points {
        seen_matched += m;
        seen_mismatched += n;
        let err = (total_matched - seen_matched) + seen_mismatched;
        if err < best.0 {
            best = (err, score);
        }
    }
    let _ = total_mismatched;
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_blocking::ClassPairRef;

    fn leftover(n: usize) -> Vec<LeftoverPair> {
        (0..n)
            .map(|i| LeftoverPair {
                class_pair: ClassPairRef {
                    r_class: i as u32,
                    s_class: 0,
                    pairs: 10,
                },
                skip: 0,
            })
            .collect()
    }

    fn stats(data: &[(f64, u64, u64)]) -> (Vec<ExaminedStats>, Vec<f64>) {
        let examined = data
            .iter()
            .enumerate()
            .map(|(i, &(_, matched, examined))| ExaminedStats {
                class_pair: ClassPairRef {
                    r_class: i as u32,
                    s_class: 1,
                    pairs: examined,
                },
                examined,
                matched,
            })
            .collect();
        let scores = data.iter().map(|&(s, _, _)| s).collect();
        (examined, scores)
    }

    #[test]
    fn maximize_precision_labels_all_nonmatch() {
        let lo = leftover(3);
        let labels = label_leftovers(
            LabelingStrategy::MaximizePrecision,
            &lo,
            &[0.1, 0.2, 0.3],
            &[],
            &[],
        );
        assert_eq!(labels, vec![PairLabel::NonMatch; 3]);
    }

    #[test]
    fn maximize_recall_labels_all_match() {
        let lo = leftover(2);
        let labels =
            label_leftovers(LabelingStrategy::MaximizeRecall, &lo, &[0.9, 0.9], &[], &[]);
        assert_eq!(labels, vec![PairLabel::Match; 2]);
    }

    #[test]
    fn classifier_learns_a_separating_threshold() {
        // Low scores matched, high scores did not: τ should fall between.
        let (examined, scores) = stats(&[
            (0.05, 9, 10),
            (0.10, 8, 10),
            (0.60, 0, 10),
            (0.70, 1, 10),
        ]);
        let lo = leftover(2);
        let labels = label_leftovers(
            LabelingStrategy::Classifier,
            &lo,
            &[0.08, 0.65],
            &examined,
            &scores,
        );
        assert_eq!(labels[0], PairLabel::Match, "low-ED leftover predicted match");
        assert_eq!(labels[1], PairLabel::NonMatch, "high-ED leftover predicted non-match");
    }

    #[test]
    fn classifier_with_no_training_matches_labels_nonmatch() {
        let (examined, scores) = stats(&[(0.5, 0, 10)]);
        let lo = leftover(1);
        let labels = label_leftovers(
            LabelingStrategy::Classifier,
            &lo,
            &[0.01],
            &examined,
            &scores,
        );
        assert_eq!(labels, vec![PairLabel::NonMatch]);
        // Entirely empty sample behaves the same.
        let labels = label_leftovers(LabelingStrategy::Classifier, &lo, &[0.01], &[], &[]);
        assert_eq!(labels, vec![PairLabel::NonMatch]);
    }
}

/// Compile coverage for `#[derive(Serialize, Deserialize)]` on generic
/// types: CI builds these against real serde; the offline build exercises
/// the stub `serde_derive`'s generics splicing (bounds, defaults, const
/// params, lifetimes, `where` clauses). Runtime behavior is not asserted —
/// derived impls are no-ops under the stubs.
#[cfg(test)]
mod serde_generics_compat {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Wrapper<T: Clone = u32> {
        inner: Vec<T>,
    }

    #[derive(Serialize, Deserialize)]
    struct Budgeted<const N: usize> {
        spent: usize,
    }

    #[derive(Serialize)]
    struct View<'a, T>
    where
        T: Copy,
    {
        slice: &'a [T],
    }

    #[derive(Serialize, Deserialize)]
    enum Either<L, R: Clone> {
        Left(L),
        Right { value: R },
    }

    #[test]
    fn generic_derives_compile() {
        let w = Wrapper { inner: vec![1u32, 2] };
        assert_eq!(w.inner.len(), 2);
        let b: Budgeted<8> = Budgeted { spent: 3 };
        assert_eq!(b.spent, 3);
        let xs = [1.0f64, 2.0];
        let v = View { slice: &xs };
        assert_eq!(v.slice.len(), 2);
        let e: Either<u8, String> = Either::Right { value: "r".into() };
        assert!(matches!(e, Either::Right { ref value } if value == "r"));
        let l: Either<u8, String> = Either::Left(7);
        assert!(matches!(l, Either::Left(7)));
    }
}
