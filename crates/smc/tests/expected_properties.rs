//! Property tests tying the expected-distance functions (§V-C) to the
//! slack bounds (§IV): the expectation always lies inside the bounds.

use pprl_anon::GenVal;
use pprl_blocking::{slack_bounds, AttrDistance};
use pprl_hierarchy::{IntervalHierarchy, TaxSpec, Taxonomy, Vgh};
use pprl_smc::expected::{expected_distance, expected_squared};
use proptest::prelude::*;

fn small_taxonomy() -> Taxonomy {
    Taxonomy::from_spec(
        "t",
        &TaxSpec::node(
            "ANY",
            vec![
                TaxSpec::node(
                    "A",
                    vec![TaxSpec::leaf("a1"), TaxSpec::leaf("a2"), TaxSpec::leaf("a3")],
                ),
                TaxSpec::node("B", vec![TaxSpec::leaf("b1"), TaxSpec::leaf("b2")]),
                TaxSpec::leaf("c"),
            ],
        ),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hamming ED is bracketed by the Hamming slack bounds and lives in
    /// [0, 1].
    #[test]
    fn hamming_ed_within_slack_bounds(a in 0u32..10, b in 0u32..10) {
        let t = small_taxonomy();
        let n = t.node_count() as u32;
        let (a, b) = (a % n, b % n);
        let vgh = Vgh::Categorical(t);
        let (ga, gb) = (GenVal::Cat(a), GenVal::Cat(b));
        let ed = expected_distance(&vgh, AttrDistance::Hamming, &ga, &gb);
        let (sdl, sds) = slack_bounds(&vgh, AttrDistance::Hamming, &ga, &gb);
        prop_assert!((0.0..=1.0).contains(&ed));
        prop_assert!(sdl <= ed + 1e-12, "sdl {sdl} <= ED {ed}");
        prop_assert!(ed <= sds + 1e-12, "ED {ed} <= sds {sds}");
    }

    /// Continuous expected *squared* distance is bracketed by the squared
    /// slack bounds.
    #[test]
    fn euclidean_ed_within_squared_slack_bounds(
        a_lo in 0.0f64..80.0, a_w in 1.0f64..20.0,
        b_lo in 0.0f64..80.0, b_w in 1.0f64..20.0,
    ) {
        let h = IntervalHierarchy::equi_width("x", 0.0, 100.0, &[2]).unwrap();
        let norm = h.norm_factor();
        let vgh = Vgh::Continuous(h);
        let ga = GenVal::Range { lo: a_lo, hi: (a_lo + a_w).min(100.0) };
        let gb = GenVal::Range { lo: b_lo, hi: (b_lo + b_w).min(100.0) };
        let ed = expected_distance(&vgh, AttrDistance::NormalizedEuclidean, &ga, &gb);
        let (sdl, sds) = slack_bounds(&vgh, AttrDistance::NormalizedEuclidean, &ga, &gb);
        let _ = norm;
        prop_assert!(ed >= sdl * sdl - 1e-9, "ED {ed} >= sdl² {}", sdl * sdl);
        prop_assert!(ed <= sds * sds + 1e-9, "ED {ed} <= sds² {}", sds * sds);
    }

    /// Eq. 8 symmetry and non-negativity.
    #[test]
    fn eq8_symmetric_nonnegative(
        a1 in 0.0f64..100.0, w1 in 0.0f64..50.0,
        a2 in 0.0f64..100.0, w2 in 0.0f64..50.0,
    ) {
        let (b1, b2) = (a1 + w1, a2 + w2);
        let fwd = expected_squared(a1, b1, a2, b2);
        let rev = expected_squared(a2, b2, a1, b1);
        prop_assert!((fwd - rev).abs() < 1e-9, "symmetry");
        prop_assert!(fwd >= -1e-9, "non-negativity");
    }
}
