//! The paper's motivating scenario (§I): two hospitals hold overlapping
//! patient populations; a medical researcher (the querying party) needs the
//! linked records, and the hospitals will not disclose anything beyond the
//! linkage result and their k-anonymous releases.
//!
//! This example shows the asymmetric setting: each hospital picks its own
//! anonymization method and privacy level, and the SMC step runs with the
//! *real Paillier protocol* (small key for demo speed) so the cost ledger
//! reflects genuine cryptographic work.
//!
//! ```sh
//! cargo run --release --example hospital_linkage
//! ```

use pprl::anon::AnonymizationMethod;
use pprl::prelude::*;
use pprl::smc::{SmcAllowance, SmcMode};

fn main() {
    let scenario = SyntheticScenario::builder()
        .records_per_set(160)
        .seed(2026)
        .build();
    let (hospital_a, hospital_b) = scenario.data_sets();

    // Hospital A is privacy-conservative (k = 16, the paper's MaxEntropy
    // anonymizer); hospital B runs legacy DataFly with k = 8. The paper
    // explicitly allows this: "Participants can choose different
    // anonymization methods, anonymity levels" (§I).
    let mut config = LinkageConfig::paper_defaults();
    config.k_r = pprl::anon::KAnonymityRequirement(16);
    config.k_s = pprl::anon::KAnonymityRequirement(8);
    config.method_r = AnonymizationMethod::MaxEntropy;
    config.method_s = AnonymizationMethod::Datafly;
    // Real crypto: 512-bit Paillier modulus (1024 in the paper; smaller
    // here so the demo finishes in seconds), budget of 400 comparisons.
    config.mode = SmcMode::Paillier {
        modulus_bits: 512,
        seed: 99,
    };
    config.allowance = SmcAllowance::Pairs(400);

    println!("hospital A: {} records (MaxEntropy, k=16)", hospital_a.len());
    println!("hospital B: {} records (DataFly,    k=8)", hospital_b.len());
    println!("running blocking + Paillier SMC step...\n");

    let outcome = HybridLinkage::new(config)
        .run(&hospital_a, &hospital_b)
        .expect("pipeline runs");

    let m = &outcome.metrics;
    println!("published views     : {} x {} equivalence classes",
        outcome.r_view.distinct_sequences(),
        outcome.s_view.distinct_sequences());
    println!(
        "blocking efficiency : {:.2}%",
        100.0 * m.blocking_efficiency
    );
    println!("true matches        : {}", m.true_matches);
    println!(
        "found               : {} (recall {:.1}%, precision {:.0}%)",
        m.true_positives,
        100.0 * m.recall(),
        100.0 * m.precision()
    );

    println!("\n=== cryptographic cost (real Paillier run) ===");
    println!("{}", outcome.ledger);
    println!(
        "modular exponentiations: {}",
        outcome.ledger.exponentiations()
    );

    // The researcher receives the matched record id pairs:
    let sample: Vec<_> = outcome.smc.matched_pairs.iter().take(5).collect();
    println!("\nfirst SMC-matched row pairs (R-row, S-row): {sample:?}");
}
