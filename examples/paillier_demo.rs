//! The cryptographic layer in isolation: Paillier keys, homomorphic
//! operations, and the three-party secure distance protocol of §V-A at the
//! byte level (framed wire messages), including the masked comparison that
//! hides even the distance.
//!
//! ```sh
//! cargo run --release --example paillier_demo
//! ```

use pprl::bignum::BigUint;
use pprl::crypto::protocol::party::{run_wire_protocol, DataHolder, QueryingParty};
use pprl::crypto::{CostLedger, Keypair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);

    // --- key generation (the paper uses 1024-bit moduli) ---
    let t = Instant::now();
    let keys = Keypair::generate(&mut rng, 1024);
    println!(
        "1024-bit Paillier keypair generated in {:?} (n has {} bits)",
        t.elapsed(),
        keys.public().key_bits()
    );

    // --- homomorphic arithmetic ---
    let (pk, sk) = keys.clone().split();
    let enc_30 = pk.encrypt_u64(30, &mut rng).unwrap();
    let enc_12 = pk.encrypt_u64(12, &mut rng).unwrap();
    let sum = pk.add(&enc_30, &enc_12);
    let scaled = pk.mul_plain(&enc_30, &BigUint::from_u64(3));
    println!("Dec(Enc(30) ⊕ Enc(12)) = {}", sk.decrypt_u64(&sum).unwrap());
    println!("Dec(3 ⊗ Enc(30))       = {}", sk.decrypt_u64(&scaled).unwrap());

    // --- the §V-A protocol over framed wire messages ---
    // Alice holds age 37, Bob holds age 31; the querying party learns
    // (37-31)² = 36 and nothing else.
    let querier = QueryingParty::with_keys(keys);
    let mut ledger = CostLedger::new();
    let t = Instant::now();
    let d2 = run_wire_protocol(&querier, 37, 31, &mut rng, &mut ledger).unwrap();
    println!("\nsecure squared distance (37 vs 31) = {d2}  [{:?}]", t.elapsed());
    println!("wire cost: {ledger}");

    // --- masked comparison: reveal only the match bit ---
    let mut ledger = CostLedger::new();
    let key_msg = querier.public_key_message(&mut ledger);
    let alice = DataHolder::from_key_message(&key_msg).unwrap();
    let bob = DataHolder::from_key_message(&key_msg).unwrap();
    // Match iff (a-b)² ≤ t. θ = 0.05 on the age domain (norm 96) gives a
    // window of 4.8 years → t = ⌊4.8²⌋ = 23.
    let m2 = alice.alice_message(37, &mut rng, &mut ledger).unwrap();
    let m3 = bob.bob_comparison_message(&m2, 31, 23, &mut rng, &mut ledger).unwrap();
    let matched = querier.reveal_match(&m3, &mut ledger).unwrap();
    println!("\nmasked comparison: |37-31| within θ-window? {matched} (distance stays hidden)");
    let m3 = bob.bob_comparison_message(&m2, 35, 23, &mut rng, &mut ledger).unwrap();
    let matched = querier.reveal_match(&m3, &mut ledger).unwrap();
    println!("masked comparison: |37-35| within θ-window? {matched}");

    // --- batched record-level protocol: one exchange per record pair ---
    use pprl::crypto::protocol::record::{
        alice_record_message, bob_record_message, querier_reveal_record,
    };
    let mut ledger = CostLedger::new();
    // Alice's record: (workclass=2, education=9, marital=0, age=37);
    // Bob's differs only by 3 years of age.
    let a = [2u64, 9, 0, 37];
    let b = [2u64, 9, 0, 34];
    let thresholds = [0u64, 0, 0, 23]; // equality ×3, age window 4.8y → t=⌊4.8²⌋
    let t = Instant::now();
    let m1 = alice_record_message(&pk, &a, &mut rng, &mut ledger).expect("protocol runs");
    let m2 = bob_record_message(&pk, &m1, &b, &thresholds, &mut rng, &mut ledger)
        .expect("protocol runs");
    let matched = querier_reveal_record(&sk, &m2, &mut ledger).expect("protocol runs");
    println!(
        "\nbatched record comparison (4 attributes, 2 messages): match = {matched}  [{:?}]",
        t.elapsed()
    );
    println!("wire cost: {ledger}");
}
