//! Quickstart: run the hybrid private record linkage pipeline end to end
//! on a synthetic two-holder scenario and inspect the trade-off metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pprl::prelude::*;

fn main() {
    // Two data holders whose data sets overlap by construction: the source
    // is split into thirds d1/d2/d3 and the inputs are D1 = d1 ∪ d3,
    // D2 = d2 ∪ d3 (the paper's §VI setup).
    let scenario = SyntheticScenario::builder()
        .records_per_set(1_000)
        .seed(7)
        .build();
    let (d1, d2) = scenario.data_sets();
    println!("D1: {} records, D2: {} records", d1.len(), d2.len());

    // Paper defaults: k = 32, θ = 0.05, SMC allowance = 1.5 % of the pair
    // space, QIDs = {age, workclass, education, marital-status, occupation}.
    let config = LinkageConfig::paper_defaults();
    let outcome = HybridLinkage::new(config)
        .run(&d1, &d2)
        .expect("pipeline runs");

    let m = &outcome.metrics;
    println!("\n=== blocking step ===");
    println!(
        "pair space          : {} pairs ({} x {})",
        m.total_pairs,
        d1.len(),
        d2.len()
    );
    println!(
        "blocking efficiency : {:.2}% of pairs decided without crypto",
        100.0 * m.blocking_efficiency
    );
    println!("provable matches    : {}", m.blocking_matched);

    println!("\n=== SMC step ===");
    println!(
        "allowance           : {} comparisons ({:.2}% of pairs)",
        m.smc_budget,
        100.0 * m.smc_budget as f64 / m.total_pairs as f64
    );
    println!("spent               : {}", m.smc_invocations);
    println!("matches found       : {}", m.smc_matched);

    println!("\n=== outcome ===");
    println!("true matches        : {}", m.true_matches);
    println!("declared matches    : {}", m.declared_matches);
    println!(
        "precision           : {:.1}%  (always 100% under maximize-precision)",
        100.0 * m.precision()
    );
    println!("recall              : {:.1}%", 100.0 * m.recall());

    assert_eq!(m.precision(), 1.0);
}
