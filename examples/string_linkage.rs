//! The paper's §VIII future-work direction, implemented: linkage over an
//! *alphanumeric* attribute (surnames with typos) using edit distance —
//! "distance functions are much more complex than Hamming distance (e.g.
//! edit distance) and there are many possible generalization mechanisms".
//!
//! Two registries share 40 % of their population, and half of the shared
//! surnames are misspelled in the second registry (substitution, insertion,
//! deletion, or transposition). Surnames are generalized by prefix
//! truncation (`smith → smi* → s* → ANY`) and blocked with exhaustive
//! inf/sup edit-distance slack bounds over the specialization sets. The
//! SMC step runs in oracle mode (a secure edit-distance circuit is out of
//! scope even for the paper).
//!
//! ```sh
//! cargo run --release --example string_linkage
//! ```

use pprl::anon::KAnonymityRequirement;
use pprl::blocking::{AttrDistance, MatchingRule};
use pprl::data::names::{fuzzy_pair_scenario, FuzzyScenarioConfig};
use pprl::prelude::*;
use pprl::smc::{SmcAllowance, SmcMode};

fn main() {
    let config = FuzzyScenarioConfig {
        records_per_set: 500,
        overlap: 0.4,
        typo_rate: 0.5,
        seed: 20_260,
    };
    let (d1, d2) = fuzzy_pair_scenario(&config);
    println!(
        "registry A: {} records, registry B: {} ({}% shared, {}% of shared surnames misspelled)",
        d1.len(),
        d2.len(),
        (config.overlap * 100.0) as u32,
        (config.typo_rate * 100.0) as u32
    );

    // Edit distance on surnames: θ = 0.2 tolerates roughly 2 edits on the
    // longest domain name; ages must agree within 0.05 · 96 ≈ 4.8 years.
    let rule = MatchingRule {
        thetas: vec![0.2, 0.05],
        distances: vec![AttrDistance::NormalizedEdit, AttrDistance::NormalizedEuclidean],
    };

    let mut cfg = LinkageConfig::paper_defaults();
    cfg.qids = vec![0, 1];
    cfg.custom_rule = Some(rule);
    cfg.k_r = KAnonymityRequirement(4);
    cfg.k_s = KAnonymityRequirement(4);
    cfg.allowance = SmcAllowance::Fraction(0.05);
    cfg.mode = SmcMode::Oracle; // secure edit-distance circuits: future work

    let outcome = HybridLinkage::new(cfg).run(&d1, &d2).expect("pipeline runs");
    let m = &outcome.metrics;

    println!(
        "\nblocking efficiency : {:.2}% (edit-distance slack bounds over prefix classes)",
        100.0 * m.blocking_efficiency
    );
    println!(
        "SMC                 : {} / {} comparisons",
        m.smc_invocations, m.smc_budget
    );
    println!("true fuzzy matches  : {}", m.true_matches);
    println!(
        "found               : {} (recall {:.1}%, precision {:.0}%)",
        m.true_positives,
        100.0 * m.recall(),
        100.0 * m.precision()
    );

    // Show a few recovered typo pairs.
    let schema = d1.schema();
    let tax = schema.attribute(0).vgh().as_taxonomy().unwrap().clone();
    let name_of = |ds: &pprl::data::DataSet, row: u32| {
        tax.label(tax.leaf_node(ds.records()[row as usize].value(0).as_cat()))
            .to_string()
    };
    println!("\nsample recovered pairs (A-surname ~ B-surname):");
    let mut shown = 0;
    for (ri, si) in outcome.matched_rows() {
        let (a, b) = (name_of(&d1, ri), name_of(&d2, si));
        if a != b {
            println!("  {a} ~ {b}");
            shown += 1;
            if shown == 8 {
                break;
            }
        }
    }
    assert_eq!(m.precision(), 1.0);
}
