//! Explore the paper's three-dimensional trade-off — privacy (k), cost
//! (SMC allowance), accuracy (recall) — on one synthetic scenario.
//!
//! Reproduces in miniature the extreme cases of §III:
//! *k = 1* → everything decided by blocking, zero SMC cost;
//! *k = |R|* → the anonymized views are all-root, cost ≈ pure SMC.
//!
//! ```sh
//! cargo run --release --example tradeoff_explorer
//! ```

use pprl::core::baselines;
use pprl::prelude::*;
use pprl::smc::SmcAllowance;

fn main() {
    let (d1, d2) = SyntheticScenario::builder()
        .records_per_set(600)
        .seed(11)
        .build()
        .data_sets();

    println!("== privacy axis: anonymity requirement k (allowance fixed at 1.5%) ==");
    println!("{:>6} {:>12} {:>12} {:>10}", "k", "efficiency", "smc spent", "recall");
    for k in [1usize, 2, 8, 32, 128, 512] {
        let cfg = LinkageConfig::paper_defaults().with_k(k);
        let out = HybridLinkage::new(cfg).run(&d1, &d2).expect("pipeline runs");
        let m = &out.metrics;
        println!(
            "{:>6} {:>11.2}% {:>12} {:>9.1}%",
            k,
            100.0 * m.blocking_efficiency,
            m.smc_invocations,
            100.0 * m.recall()
        );
    }

    println!("\n== cost axis: SMC allowance (k fixed at 32) ==");
    println!("{:>10} {:>12} {:>10}", "allowance", "spent", "recall");
    for pct in [0.0f64, 0.005, 0.01, 0.015, 0.02, 0.03] {
        let cfg =
            LinkageConfig::paper_defaults().with_allowance(SmcAllowance::Fraction(pct));
        let out = HybridLinkage::new(cfg).run(&d1, &d2).expect("pipeline runs");
        let m = &out.metrics;
        println!(
            "{:>9.1}% {:>12} {:>9.1}%",
            100.0 * pct,
            m.smc_invocations,
            100.0 * m.recall()
        );
    }

    println!("\n== baselines ==");
    let smc = baselines::pure_smc(&d1, &d2);
    println!(
        "pure SMC          : {} invocations, precision 100%, recall 100%",
        smc.smc_invocations
    );
    let schema = d1.schema();
    let rule = pprl::blocking::MatchingRule::uniform(schema, &[0, 1, 2, 3, 4], 0.05);
    for k in [2usize, 32] {
        let sanit = baselines::pure_sanitization(
            &d1,
            &d2,
            &[0, 1, 2, 3, 4],
            &rule,
            k,
            pprl::anon::AnonymizationMethod::MaxEntropy,
        )
        .expect("baseline runs");
        println!(
            "{:<18}: 0 invocations, precision {:>5.1}%, recall {:>5.1}%",
            sanit.name,
            100.0 * sanit.precision,
            100.0 * sanit.recall
        );
    }
    println!(
        "\nThe hybrid rows above sit between the two baselines: far cheaper than\n\
         pure SMC, far more accurate than sanitization alone — the paper's thesis."
    );
}
