//! Offline API stub for `bytes` 1.x — the subset this workspace uses:
//! `BytesMut` as a growable buffer with big-endian put/get, `Bytes` as an
//! immutable byte container, and `Buf` implemented for `&[u8]`.

use std::ops::Deref;

/// Immutable byte buffer (plain `Vec<u8>` inside; no refcounted slices).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
    pub fn len(&self) -> usize {
        self.0.len()
    }
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.0 {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
    pub fn len(&self) -> usize {
        self.0.len()
    }
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source. Big-endian getters, like real `bytes`.
/// Getters panic when the source is too short — callers bounds-check first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink. Big-endian putters, like real `bytes`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_slice(b"hi");
        let frozen = buf.freeze();
        let mut data: &[u8] = &frozen;
        assert_eq!(data.get_u8(), 7);
        assert_eq!(data.get_u32(), 0xDEAD_BEEF);
        assert_eq!(data.get_u64(), 42);
        let mut rest = [0u8; 2];
        data.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"hi");
        assert!(!data.has_remaining());
    }
}
