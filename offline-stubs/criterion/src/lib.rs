//! Offline API stub for `criterion` 0.5 — runs each benchmark closure a few
//! times and prints a rough mean; enough to smoke-test bench targets.

use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub struct Bencher {
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let per = start.elapsed().as_nanos() / self.iters.max(1) as u128;
        println!("    ~{per} ns/iter ({} iters)", self.iters);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self {
        println!("bench {}/{id} (stub)", self.name);
        let mut b = Bencher { iters: 3 };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("bench {}/{id} (stub)", self.name);
        let mut b = Bencher { iters: 3 };
        f(&mut b, input);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn finish(&mut self) {}
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench {id} (stub)");
        let mut b = Bencher { iters: 3 };
        f(&mut b);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
