//! Offline API stub for `proptest` 1.x — random-case generation without
//! shrinking. Cases are seeded from the test name, so runs are
//! deterministic; `proptest-regressions` files are ignored.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- rng

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

// ----------------------------------------------------------- strategy

pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("proptest stub: prop_filter rejected 1000 candidates");
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// Integer ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// -------------------------------------------------------- arbitrary

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        any::<T>()
    }
}

pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// -------------------------------------------------------- collection

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — lengths drawn uniformly from the range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size.clone(),
            }
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

// ------------------------------------------------------------ runner

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, sample, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Stub: treat a failed assumption as a vacuous pass of the case.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    }};
}

/// The `proptest!` block macro: expands each `fn name(pat in strategy, ...)`
/// into a `#[test]` running `cases` random iterations (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest stub: case {case} failed: {e}");
                }
            }
        }
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u8, Vec<u8>)> {
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..16))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u8..8, (k, v) in pair()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 8);
            prop_assert!(v.len() < 16);
            let _ = k;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u32), Just(2u32), (3u32..10).prop_map(|x| x)]) {
            prop_assert!((1..10).contains(&v));
        }

        #[test]
        fn index_in_bounds(pos in any::<prop::sample::Index>()) {
            prop_assert!(pos.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
