//! Offline API stub for `rand` 0.8 — the subset this workspace uses.
//!
//! `StdRng` is SplitMix64-based (not ChaCha12): deterministic for a given
//! seed within this stub, but a different stream than the real crate.
//!
//! # SECURITY
//! This generator is **cryptographically predictable** (64 bits of state,
//! invertible output function) even though it implements the `CryptoRng`
//! marker so workspace trait bounds compile. Keys and randomness produced
//! by a stub-built binary are worthless; such binaries must never leave
//! the sandboxed test environment. Every `StdRng` construction prints a
//! one-time warning to stderr, and `rand::IS_STUB` lets a binary detect
//! the stub at compile time (the real crate has no such constant, so code
//! referencing it only compiles under the stubs).

/// `true` — this is the offline stub, not the real `rand` crate. The real
/// crate exposes no such constant, so any mention of `rand::IS_STUB` fails
/// to compile against real `rand`; use it only in sandbox-only diagnostics.
pub const IS_STUB: bool = true;

/// Core RNG: raw word and byte output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker matching `rand::CryptoRng` so trait bounds compile.
pub trait CryptoRng {}

/// Types samplable via `Rng::gen` (stands in for `Standard: Distribution<T>`).
pub trait SampleStandard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $via:ident),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_sample_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                 u64 => next_u64, usize => next_u64,
                 i8 => next_u32, i16 => next_u32, i32 => next_u32,
                 i64 => next_u64, isize => next_u64);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, matching `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;
    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion of the u64 into the full seed, like rand_core.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl super::CryptoRng for StdRng {}

    /// One-shot stderr warning so a stub-built binary can never silently
    /// generate weak keys: the stub is fine for deterministic tests, fatal
    /// for anything security-relevant.
    fn warn_predictable_rng() {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "WARNING: offline rand stub active — StdRng is a predictable \
                 SplitMix64 (64-bit state), NOT a CSPRNG. Any keys or nonces \
                 from this build are cryptographically worthless; never use \
                 stub-built binaries outside the sandboxed test environment \
                 (see offline-stubs/README.md)."
            );
        });
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            warn_predictable_rng();
            // Fold the 32-byte seed into the 64-bit state.
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for chunk in seed.chunks(8) {
                let mut w = [0u8; 8];
                w[..chunk.len()].copy_from_slice(chunk);
                state = (state ^ u64::from_le_bytes(w)).wrapping_mul(0x100_0000_01b3);
            }
            StdRng { state }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = r.gen_range(0u8..=255);
            let _ = w;
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use super::seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = StdRng::seed_from_u64(7);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
