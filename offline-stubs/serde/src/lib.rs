//! Offline API stub for `serde` 1.x.
//!
//! The traits carry **default method bodies that fail at runtime**, so the
//! stub `serde_derive` can emit empty impls and every `#[derive(Serialize,
//! Deserialize)]` in the workspace compiles. Hand-written impls (like
//! `BigUint`'s string round-trip) override the defaults and work for real.
//!
//! `Deserializer` exposes a `stub_json_text` escape hatch: a deserializer
//! that is backed by JSON text (the stub `serde_json`) surrenders the raw
//! text so `Deserialize` impls written against this stub (e.g. for
//! `serde_json::Value`) can parse it directly. Real serde has a proper
//! visitor data model instead; nothing in workspace code depends on the
//! hatch.

use std::fmt::Display;

pub mod ser {
    use super::Display;

    /// Error constructor bound used by `Serializer::Error`.
    pub trait Error: Sized + Display {
        fn custom<T: Display>(msg: T) -> Self;
    }

    pub trait Serializer: Sized {
        type Ok;
        type Error: Error;

        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
            let _ = v;
            Err(Self::Error::custom("serde stub: serialize_str unimplemented"))
        }
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            let _ = v;
            Err(Self::Error::custom("serde stub: serialize_u64 unimplemented"))
        }
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
            let _ = v;
            Err(Self::Error::custom("serde stub: serialize_i64 unimplemented"))
        }
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            let _ = v;
            Err(Self::Error::custom("serde stub: serialize_f64 unimplemented"))
        }
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            let _ = v;
            Err(Self::Error::custom("serde stub: serialize_bool unimplemented"))
        }
        /// Stub escape hatch mirroring `Deserializer::stub_json_text`: a
        /// JSON-backed serializer accepts pre-rendered JSON text verbatim
        /// (used by `serde_json::Value`'s impl).
        fn stub_raw_json(self, text: &str) -> Result<Self::Ok, Self::Error> {
            let _ = text;
            Err(Self::Error::custom("serde stub: raw JSON unsupported"))
        }
    }

    pub trait Serialize {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let _ = serializer;
            Err(S::Error::custom(
                "serde stub: derived Serialize is a no-op (offline-stubs/README.md)",
            ))
        }
    }
}

pub mod de {
    use super::Display;

    /// Error constructor bound used by `Deserializer::Error`.
    pub trait Error: Sized + Display {
        fn custom<T: Display>(msg: T) -> Self;
    }

    pub trait Deserializer<'de>: Sized {
        type Error: Error;

        /// Stub escape hatch: JSON-backed deserializers return their raw
        /// input text so stub-aware impls can parse it directly.
        fn stub_json_text(&self) -> Option<&str> {
            None
        }
    }

    pub trait Deserialize<'de>: Sized {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let _ = deserializer;
            Err(D::Error::custom(
                "serde stub: derived Deserialize is a no-op (offline-stubs/README.md)",
            ))
        }
    }

    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

impl<'de> de::Deserialize<'de> for String {
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = deserializer
            .stub_json_text()
            .ok_or_else(|| de::Error::custom("serde stub: non-JSON deserializer"))?;
        let trimmed = text.trim();
        let inner = trimmed
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .ok_or_else(|| de::Error::custom("serde stub: expected JSON string"))?;
        // Minimal unescape: the stub only meets \" and \\ in practice.
        Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
    }
}

impl ser::Serialize for String {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl ser::Serialize for &str {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

macro_rules! impl_ser_prim {
    ($($t:ty => $m:ident as $as:ty),*) => {$(
        impl ser::Serialize for $t {
            fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$m(*self as $as)
            }
        }
    )*};
}
impl_ser_prim!(u8 => serialize_u64 as u64, u16 => serialize_u64 as u64,
               u32 => serialize_u64 as u64, u64 => serialize_u64 as u64,
               usize => serialize_u64 as u64,
               i8 => serialize_i64 as i64, i16 => serialize_i64 as i64,
               i32 => serialize_i64 as i64, i64 => serialize_i64 as i64,
               isize => serialize_i64 as i64,
               f32 => serialize_f64 as f64, f64 => serialize_f64 as f64);

impl ser::Serialize for bool {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}
