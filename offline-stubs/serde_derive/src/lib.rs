//! Offline stub `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Emits empty trait impls; the stub `serde` traits have default method
//! bodies that return an error at runtime. That keeps every derived type
//! compiling while leaving actual (de)serialization to hand-written impls
//! (`BigUint`, `serde_json::Value`). No `syn`/`quote` — the input is
//! scanned token-by-token for the type name, its generic parameters
//! (bounds kept, defaults stripped, splice into the impl header), and a
//! trailing `where` clause. Remaining limitation: a type that itself
//! declares a `'de` lifetime parameter collides with the `'de` the
//! `Deserialize` impl introduces.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The pieces of a type declaration an impl header needs.
struct TypeDecl {
    name: String,
    /// Generic params with bounds, defaults stripped: `T: Clone, const N: usize`.
    impl_params: String,
    /// Bare param names for the type path: `T, N`.
    ty_params: String,
    /// Trailing `where ...` clause, or empty.
    where_clause: String,
}

fn render(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

/// Splits a generic parameter list at top-level commas. `<`/`>` nesting is
/// tracked so `T: Into<String>` stays one param; a `>` directly after `-`
/// (the `->` of an `Fn() -> T` bound) does not close a level.
fn split_params(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    let mut prev_dash = false;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !prev_dash => depth -= 1,
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Drops a default (`= ...`) from a single generic parameter — defaults are
/// legal on the type declaration but not on an impl. The `=` of associated
/// type bindings (`Iterator<Item = u8>`) sits at depth > 0 and is kept.
fn strip_default(param: &[TokenTree]) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut prev_dash = false;
    for tt in param {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !prev_dash => depth -= 1,
                '=' if depth == 0 => break,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        out.push(tt.clone());
    }
    out
}

/// Extracts the bare name of one generic parameter: `'a: 'b` → `'a`,
/// `const N: usize` → `N`, `T: Clone` → `T`.
fn param_name(param: &[TokenTree]) -> Option<String> {
    let mut it = param.iter();
    while let Some(tt) = it.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                if let Some(TokenTree::Ident(id)) = it.next() {
                    return Some(format!("'{id}"));
                }
            }
            TokenTree::Ident(id) => {
                if id.to_string() == "const" {
                    if let Some(TokenTree::Ident(n)) = it.next() {
                        return Some(n.to_string());
                    }
                    return None;
                }
                return Some(id.to_string());
            }
            _ => {}
        }
    }
    None
}

/// Parses `struct`/`enum`/`union` declarations far enough to build an impl
/// header: name, generic parameter list, and any `where` clause (which may
/// come before the brace body or, for tuple structs, after the parens).
fn parse_decl(input: TokenStream) -> Option<TypeDecl> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let kw = tokens.iter().position(|tt| {
        matches!(tt, TokenTree::Ident(id)
            if matches!(id.to_string().as_str(), "struct" | "enum" | "union"))
    })?;
    let mut i = kw + 1;
    let name = loop {
        match tokens.get(i)? {
            TokenTree::Ident(id) => break id.to_string(),
            _ => i += 1,
        }
    };
    i += 1;

    // Generic parameter list, if any: collect the tokens between the
    // outermost `<` and its matching `>`.
    let mut params: Vec<TokenTree> = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1i32;
        let mut prev_dash = false;
        while depth > 0 {
            let tt = tokens.get(i)?;
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
            if depth > 0 {
                params.push(tt.clone());
            }
            i += 1;
        }
    }

    // `where` clause: everything from a top-level `where` up to the brace
    // body or the `;` of a tuple/unit struct.
    let mut where_clause = String::new();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "where" => {
                let mut w: Vec<TokenTree> = Vec::new();
                i += 1;
                while let Some(tt) = tokens.get(i) {
                    match tt {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                        TokenTree::Punct(p) if p.as_char() == ';' => break,
                        tt => w.push(tt.clone()),
                    }
                    i += 1;
                }
                if !w.is_empty() {
                    where_clause = format!("where {}", render(&w));
                }
                break;
            }
            _ => i += 1,
        }
    }

    let groups = split_params(&params);
    let impl_params = groups
        .iter()
        .map(|p| render(&strip_default(p)))
        .collect::<Vec<_>>()
        .join(", ");
    let ty_params = groups
        .iter()
        .filter_map(|p| param_name(p))
        .collect::<Vec<_>>()
        .join(", ");

    Some(TypeDecl { name, impl_params, ty_params, where_clause })
}

fn emit_impl(decl: &TypeDecl, extra_lifetime: Option<&str>, trait_path: &str) -> TokenStream {
    let mut impl_params = decl.impl_params.clone();
    if let Some(lt) = extra_lifetime {
        impl_params = if impl_params.is_empty() {
            lt.to_string()
        } else {
            format!("{lt}, {impl_params}")
        };
    }
    let impl_generics =
        if impl_params.is_empty() { String::new() } else { format!("<{impl_params}>") };
    let ty_generics = if decl.ty_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", decl.ty_params)
    };
    format!(
        "impl{impl_generics} {trait_path} for {name}{ty_generics} {where_clause} {{}}",
        name = decl.name,
        where_clause = decl.where_clause,
    )
    .parse()
    .unwrap_or_default()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_decl(input) {
        Some(decl) => emit_impl(&decl, None, "::serde::Serialize"),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_decl(input) {
        Some(decl) => emit_impl(&decl, Some("'de"), "::serde::Deserialize<'de>"),
        None => TokenStream::new(),
    }
}
