//! Offline API stub for `serde_json` 1.x.
//!
//! `Value`, the `json!` macro, `from_str`/`from_slice` (full JSON parser),
//! and `to_string` are real. Generic (de)serialization of *derived* types
//! returns `Err` because the stub `serde` derive is a no-op — hand-written
//! `Serialize`/`Deserialize` impls work.

use std::collections::BTreeMap;
use std::fmt;

pub mod error {
    use std::fmt;

    #[derive(Debug)]
    pub struct Error(pub(crate) String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "serde_json stub error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    impl serde::ser::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl serde::de::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }
}

pub use error::Error;
pub type Result<T> = std::result::Result<T, Error>;

/// JSON number preserving integer-ness, like real `serde_json`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(v) => Some(v),
            Number::U(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(v) => Some(v as f64),
            Number::I(v) => Some(v as f64),
            Number::F(v) => Some(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
                    // Match serde_json: whole floats print with ".0".
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered, like serde_json with `preserve_order`.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    /// Keys in insertion order (sorted view available via `sorted_entries`).
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(e) => Some(e),
            _ => None,
        }
    }
    pub fn sorted_entries(&self) -> Option<BTreeMap<&str, &Value>> {
        self.entries()
            .map(|e| e.iter().map(|(k, v)| (k.as_str(), v)).collect())
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U(v as u64)) }
        }
    )*};
}
impl_value_from_int!(u8, u16, u32, u64, usize);

macro_rules! impl_value_from_sint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 { Value::Number(Number::U(v as u64)) }
                else { Value::Number(Number::I(v as i64)) }
            }
        }
    )*};
}
impl_value_from_sint!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F(v as f64))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl From<()> for Value {
    fn from(_: ()) -> Value {
        Value::Null
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => {
                let mut out = String::new();
                escape_into(&mut out, s);
                write!(f, "{out}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::new();
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.err("unexpected character"),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err("bad literal")
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = s.chars().next().ok_or_else(|| Error("eof".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Number(Number::F(f))),
            Err(_) => self.err("bad number"),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

// ------------------------------------------------- serde entry points

struct JsonDeserializer<'de> {
    text: &'de str,
}

impl<'de> serde::Deserializer<'de> for JsonDeserializer<'de> {
    type Error = Error;
    fn stub_json_text(&self) -> Option<&str> {
        Some(self.text)
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let text = deserializer
            .stub_json_text()
            .ok_or_else(|| serde::de::Error::custom("serde_json stub: non-JSON deserializer"))?;
        parse_value(text).map_err(|e| serde::de::Error::custom(e))
    }
}

pub fn from_str<'de, T: serde::Deserialize<'de>>(text: &'de str) -> Result<T> {
    T::deserialize(JsonDeserializer { text })
}

pub fn from_slice<'de, T: serde::Deserialize<'de>>(bytes: &'de [u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error("invalid utf-8".into()))?;
    from_str(text)
}

/// Serializer producing a single JSON scalar — enough for hand-written
/// impls like `BigUint` (string) and primitives; derived types fail.
struct JsonSerializer;

impl serde::Serializer for JsonSerializer {
    type Ok = String;
    type Error = Error;

    fn serialize_str(self, v: &str) -> Result<String> {
        let mut out = String::new();
        escape_into(&mut out, v);
        Ok(out)
    }
    fn serialize_u64(self, v: u64) -> Result<String> {
        Ok(v.to_string())
    }
    fn serialize_i64(self, v: i64) -> Result<String> {
        Ok(v.to_string())
    }
    fn serialize_f64(self, v: f64) -> Result<String> {
        Ok(Number::F(v).to_string())
    }
    fn serialize_bool(self, v: bool) -> Result<String> {
        Ok(v.to_string())
    }
    fn stub_raw_json(self, text: &str) -> Result<String> {
        Ok(text.to_string())
    }
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.stub_raw_json(&self.to_string())
    }
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    value.serialize(JsonSerializer)
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    to_string(value)
}

pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// `json!` literal macro. Handles nested objects/arrays with string-literal
/// keys and expression values — the shapes this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_array!(@arr [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_object!(@obj [] $($tt)*) };
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (@obj [$(($k:expr, $v:expr))*]) => {
        $crate::Value::Object(vec![$(($k.to_string(), $v)),*])
    };
    (@obj [$($done:tt)*] $key:tt : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::json!({ $($inner)* }))] $($rest)*)
    };
    (@obj [$($done:tt)*] $key:tt : { $($inner:tt)* } $(,)?) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::json!({ $($inner)* }))])
    };
    (@obj [$($done:tt)*] $key:tt : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::json!([ $($inner)* ]))] $($rest)*)
    };
    (@obj [$($done:tt)*] $key:tt : [ $($inner:tt)* ] $(,)?) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::json!([ $($inner)* ]))])
    };
    (@obj [$($done:tt)*] $key:tt : null , $($rest:tt)*) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::Value::Null)] $($rest)*)
    };
    (@obj [$($done:tt)*] $key:tt : null $(,)?) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::Value::Null)])
    };
    (@obj [$($done:tt)*] $key:tt : $val:expr , $($rest:tt)*) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::Value::from($val))] $($rest)*)
    };
    (@obj [$($done:tt)*] $key:tt : $val:expr) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::Value::from($val))])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    (@arr [$($done:expr)*]) => { $crate::Value::Array(vec![$($done),*]) };
    (@arr [$($done:tt)*] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_array!(@arr [$($done)* $crate::json!({ $($inner)* })] $($rest)*)
    };
    (@arr [$($done:tt)*] { $($inner:tt)* } $(,)?) => {
        $crate::json_array!(@arr [$($done)* $crate::json!({ $($inner)* })])
    };
    (@arr [$($done:tt)*] $val:expr , $($rest:tt)*) => {
        $crate::json_array!(@arr [$($done)* $crate::Value::from($val)] $($rest)*)
    };
    (@arr [$($done:tt)*] $val:expr) => {
        $crate::json_array!(@arr [$($done)* $crate::Value::from($val)])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a":1,"b":-2,"pi":3.5,"s":"x\"y","arr":[1,2,3],"t":true,"n":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_i64(), Some(-2));
        assert_eq!(v["pi"].as_f64(), Some(3.5));
        assert_eq!(v["s"].as_str(), Some("x\"y"));
        assert_eq!(v["arr"][2].as_u64(), Some(3));
        assert_eq!(v["t"].as_bool(), Some(true));
        assert!(v["n"].is_null());
        let printed = v.to_string();
        let reparsed: Value = from_str(&printed).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn json_macro_shapes() {
        let count = 3u64;
        let v = json!({
            "plain": count,
            "nested": { "x": 1.0, "s": "hi" },
            "list": [1, 2],
            "call": format!("{}-{}", 1, 2),
        });
        assert_eq!(v["plain"].as_u64(), Some(3));
        assert_eq!(v["nested"]["x"].as_f64(), Some(1.0));
        assert_eq!(v["nested"]["s"].as_str(), Some("hi"));
        assert_eq!(v["list"][1].as_u64(), Some(2));
        assert_eq!(v["call"].as_str(), Some("1-2"));
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(json!({"p": 1.0}).to_string(), r#"{"p":1.0}"#);
        assert_eq!(json!({"p": 0.5}).to_string(), r#"{"p":0.5}"#);
    }
}
