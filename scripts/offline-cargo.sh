#!/bin/sh
# Runs cargo with the crates.io registry replaced by offline API stubs
# (offline-stubs/README.md). Usage: scripts/offline-cargo.sh test -q -- --nocapture
#
# The stub sources resolve to fake versions (serde 1.0.999, ...) and empty
# checksums, so the lockfile cargo writes here must never be seen by a
# networked build. The wrapper keeps that lock private: it swaps any existing
# workspace Cargo.lock aside, installs offline-stubs/Cargo.offline.lock for
# the duration of the command, then saves it back and restores the original.
set -eu
cd "$(dirname "$0")/.."

OFFLINE_LOCK=offline-stubs/Cargo.offline.lock
SAVED_LOCK=
if [ -f Cargo.lock ]; then
  SAVED_LOCK=$(mktemp Cargo.lock.networked.XXXXXX)
  mv -f Cargo.lock "$SAVED_LOCK"
fi
if [ -f "$OFFLINE_LOCK" ]; then
  cp -f "$OFFLINE_LOCK" Cargo.lock
fi

restore_locks() {
  status=$?
  trap - EXIT INT TERM
  if [ -f Cargo.lock ]; then
    mv -f Cargo.lock "$OFFLINE_LOCK"
  fi
  if [ -n "$SAVED_LOCK" ] && [ -f "$SAVED_LOCK" ]; then
    mv -f "$SAVED_LOCK" Cargo.lock
  fi
  exit "$status"
}
trap restore_locks EXIT INT TERM

# Flag placement matters twice over:
# - a `--` in "$@" (e.g. `test -- --nocapture`) must never swallow the
#   flags into test-binary args, so they cannot simply be appended;
# - builtin subcommands and aliases (`xtask` expands to `run ... --`)
#   take the flags as cargo globals BEFORE the subcommand, but external
#   subcommands like `clippy` re-invoke an inner cargo that does not
#   inherit outer globals, so for those the flags go right after the
#   subcommand name (still ahead of any `--`).
case "${1:-}" in
  clippy | fmt | miri)
    subcmd=$1
    shift
    set -- "$subcmd" \
      --offline \
      --config 'source.crates-io.replace-with="offline-stubs"' \
      --config 'source.offline-stubs.directory="offline-stubs"' \
      "$@"
    ;;
  *)
    set -- --offline \
      --config 'source.crates-io.replace-with="offline-stubs"' \
      --config 'source.offline-stubs.directory="offline-stubs"' \
      "$@"
    ;;
esac
cargo "$@"
