//! # pprl — A Hybrid Approach to Private Record Linkage
//!
//! Production-quality Rust reproduction of *Inan, Kantarcioglu, Bertino,
//! Scannapieco, "A Hybrid Approach to Private Record Linkage", ICDE 2008*.
//!
//! Two data holders want the matching record pairs of their private data
//! sets revealed to a querying party — and nothing else. The hybrid method
//! publishes k-anonymous generalizations, **blocks** (decides) most pairs
//! from the anonymized releases alone using slack distance bounds, and spends
//! a bounded budget of **secure multi-party computation** (Paillier-based
//! secure distance) on the pairs the blocking step could not decide.
//!
//! The result trades off along three axes the paper names in its title
//! figure: *privacy* (the anonymity requirement `k`), *cost* (the SMC
//! allowance), and *accuracy* (recall; precision is always 100 %).
//!
//! ## Quickstart
//!
//! ```
//! use pprl::prelude::*;
//!
//! // Two hospitals synthesize their (overlapping) patient data sets.
//! let scenario = SyntheticScenario::builder()
//!     .records_per_set(300)
//!     .seed(7)
//!     .build();
//! let (d1, d2) = scenario.data_sets();
//!
//! // Paper defaults are k = 32, theta = 0.05, allowance = 1.5 % of the
//! // pair space, 5 quasi-identifiers; at this toy scale we relax k so the
//! // equivalence classes stay informative.
//! let config = LinkageConfig::paper_defaults().with_k(4);
//! let outcome = HybridLinkage::new(config).run(&d1, &d2).unwrap();
//!
//! // Blocking decisions are exact, so precision is always 100 %; recall
//! // depends on the synthesizer's RNG quality (a deterministic stub RNG
//! // degenerates the overlap), so assert only its range here.
//! assert_eq!(outcome.metrics.precision(), 1.0);
//! assert!((0.0..=1.0).contains(&outcome.metrics.recall()));
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`bignum`] | `pprl-bignum` | arbitrary-precision arithmetic substrate |
//! | [`journal`] | `pprl-journal` | durable run journal (checksummed frames, torn-write recovery) |
//! | [`crypto`] | `pprl-crypto` | Paillier cryptosystem + secure distance protocol |
//! | [`hierarchy`] | `pprl-hierarchy` | value generalization hierarchies |
//! | [`data`] | `pprl-data` | Adult-like data set substrate |
//! | [`anon`] | `pprl-anon` | k-anonymization algorithms |
//! | [`blocking`] | `pprl-blocking` | slack distances + M/N/U blocking step |
//! | [`smc`] | `pprl-smc` | SMC step, heuristics, allowance budgeting |
//! | [`core`] | `pprl-core` | the hybrid pipeline, metrics, baselines |

pub use pprl_anon as anon;
pub use pprl_bignum as bignum;
pub use pprl_blocking as blocking;
pub use pprl_core as core;
pub use pprl_crypto as crypto;
pub use pprl_data as data;
pub use pprl_hierarchy as hierarchy;
pub use pprl_journal as journal;
pub use pprl_smc as smc;

/// Convenience re-exports covering the common API surface.
pub mod prelude {
    pub use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
    pub use pprl_blocking::{BlockingEngine, BlockingOutcome, PairLabel};
    pub use pprl_core::{
        GroundTruth, HybridLinkage, LinkageConfig, LinkageMetrics, LinkageOutcome,
        SyntheticScenario,
    };
    pub use pprl_crypto::paillier::{Keypair, PrivateKey, PublicKey};
    pub use pprl_data::{DataSet, Record, Schema};
    pub use pprl_hierarchy::{AttributeKind, Vgh};
    pub use pprl_smc::{LabelingStrategy, SelectionHeuristic, SmcAllowance};
}
