//! Cross-crate integration: privacy validators on published views, the
//! Fig.-2 method ordering, slack-bound soundness sampled across the real
//! Adult VGHs, and the UCI loader path.

use pprl::anon::{
    distinct_class_diversity, AnonymizationMethod, Anonymizer, KAnonymityRequirement,
};
use pprl::blocking::{attribute_distance, slack_bounds, MatchingRule};
use pprl::data::{synth, Value};
use pprl::prelude::*;

const QIDS: [usize; 5] = [0, 1, 2, 3, 4];

#[test]
fn published_views_satisfy_their_privacy_requirements() {
    let data = synth::generate(&synth::SynthConfig {
        records: 800,
        seed: 19,
    });
    for (method, k) in [
        (AnonymizationMethod::MaxEntropy, 32usize),
        (AnonymizationMethod::Datafly, 16),
        (AnonymizationMethod::Tds, 8),
        (AnonymizationMethod::Mondrian, 64),
    ] {
        let view = Anonymizer::new(method, KAnonymityRequirement(k))
            .anonymize(&data, &QIDS)
            .unwrap();
        assert!(view.is_k_anonymous(k), "{method:?}");
        // ℓ-diversity on the income class is reportable (≥ 1 by definition).
        let l = distinct_class_diversity(&view, &data);
        assert!(l >= 1);
    }
}

#[test]
fn entropy_method_beats_datafly_on_sequence_count() {
    // Fig. 2's robust ordering: the paper's MaxEntropy metric produces more
    // distinct sequences than DataFly's full-domain recoding at low k.
    let data = synth::generate(&synth::SynthConfig {
        records: 3_000,
        seed: 23,
    });
    for k in [2usize, 8, 32] {
        let entropy = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(k))
            .anonymize(&data, &QIDS)
            .unwrap();
        let datafly = Anonymizer::new(AnonymizationMethod::Datafly, KAnonymityRequirement(k))
            .anonymize(&data, &QIDS)
            .unwrap();
        assert!(
            entropy.distinct_sequences() > datafly.distinct_sequences(),
            "k={k}: entropy {} <= datafly {}",
            entropy.distinct_sequences(),
            datafly.distinct_sequences()
        );
    }
}

/// Slack bounds must bracket the true attribute distance for *every*
/// record pair and every pair of generalizations that cover them — sampled
/// over real anonymized views of the Adult schema.
#[test]
fn slack_bounds_bracket_true_distances() {
    let (d1, d2) = SyntheticScenario::builder()
        .records_per_set(150)
        .seed(29)
        .build()
        .data_sets();
    let anon = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(8));
    let v1 = anon.anonymize(&d1, &QIDS).unwrap();
    let v2 = anon.anonymize(&d2, &QIDS).unwrap();
    let schema = d1.schema();
    let rule = MatchingRule::uniform(schema, &QIDS, 0.05);

    for c1 in v1.classes().iter().take(12) {
        for c2 in v2.classes().iter().take(12) {
            for (pos, &q) in QIDS.iter().enumerate() {
                let vgh = schema.attribute(q).vgh();
                let (sdl, sds) =
                    slack_bounds(vgh, rule.distances[pos], &c1.sequence[pos], &c2.sequence[pos]);
                for &ri in c1.rows.iter().take(4) {
                    for &si in c2.rows.iter().take(4) {
                        let d = attribute_distance(
                            vgh,
                            rule.distances[pos],
                            d1.records()[ri as usize].value(q),
                            d2.records()[si as usize].value(q),
                        );
                        assert!(
                            sdl <= d + 1e-9 && d <= sds + 1e-9,
                            "attr {pos}: {sdl} <= {d} <= {sds} violated"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn uci_loader_runs_the_identical_pipeline() {
    // A miniature adult.data-format file exercises the loader → pipeline
    // path end to end (the real file drops in the same way).
    let rows = [
        "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K",
        "50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, <=50K",
        "38, Private, 215646, HS-grad, 9, Divorced, Handlers-cleaners, Not-in-family, White, Male, 0, 0, 40, United-States, <=50K",
        "53, Private, 234721, 11th, 7, Married-civ-spouse, Handlers-cleaners, Husband, Black, Male, 0, 0, 40, United-States, <=50K",
        "28, Private, 338409, Bachelors, 13, Married-civ-spouse, Prof-specialty, Wife, Black, Female, 0, 0, 40, Cuba, <=50K",
        "37, Private, 284582, Masters, 14, Married-civ-spouse, Exec-managerial, Wife, White, Female, 0, 0, 40, United-States, <=50K",
        "49, Private, 160187, 9th, 5, Married-spouse-absent, Other-service, Not-in-family, Black, Female, 0, 0, 16, Jamaica, <=50K",
        "52, Self-emp-not-inc, 209642, HS-grad, 9, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 45, United-States, >50K",
    ];
    let text = rows.join("\n");
    let ds = pprl::data::loader::parse_adult(text.lines().map(|l| Ok(l.to_string()))).unwrap();
    assert_eq!(ds.len(), 8);

    // Self-linkage: every record matches itself.
    let cfg = LinkageConfig::paper_defaults()
        .with_k(2)
        .with_allowance(pprl::smc::SmcAllowance::Unlimited);
    let out = HybridLinkage::new(cfg).run(&ds, &ds).unwrap();
    assert!(out.metrics.true_matches >= 8);
    assert_eq!(out.metrics.recall(), 1.0);
    assert_eq!(out.metrics.precision(), 1.0);
}

#[test]
fn values_stay_within_vgh_domains_across_generator_and_loader() {
    let data = synth::generate(&synth::SynthConfig {
        records: 500,
        seed: 31,
    });
    let schema = data.schema();
    for rec in data.records() {
        for (i, v) in rec.values().iter().enumerate() {
            match (schema.attribute(i).vgh(), v) {
                (vgh, Value::Num(x)) => {
                    let h = vgh.as_intervals().expect("kind matches");
                    assert!(h.leaf_for(*x).is_ok());
                }
                (vgh, Value::Cat(p)) => {
                    let t = vgh.as_taxonomy().expect("kind matches");
                    assert!((*p as usize) < t.leaf_count());
                }
            }
        }
    }
}
