//! Acceptance tests for the fault-tolerant SMC transport: under modest
//! fault rates with retries, the protocol absorbs every injected fault and
//! linkage quality is untouched; when retries are exhausted, degradation is
//! *graceful* — abandoned pairs are labeled by the configured strategy
//! (maximize-precision ⇒ non-match, so precision stays 1.0) and accounted
//! for in the degradation report.

use pprl::prelude::*;
use pprl::smc::{ChannelConfig, FaultConfig, RetryPolicy, SmcAllowance, SmcMode};

fn scenario() -> (DataSet, DataSet) {
    SyntheticScenario::builder()
        .records_per_set(120)
        .seed(7_771)
        .build()
        .data_sets()
}

fn base_config() -> LinkageConfig {
    LinkageConfig::paper_defaults()
        .with_k(8)
        .with_allowance(SmcAllowance::Pairs(60))
        .with_mode(SmcMode::PaillierBatched {
            modulus_bits: 256,
            seed: 99,
            pack: false,
        })
}

#[test]
fn retries_absorb_moderate_fault_rates() {
    let (d1, d2) = scenario();

    // Reference run: perfect in-process hand-off.
    let clean = HybridLinkage::new(base_config()).run(&d1, &d2).unwrap();

    // Same run over a network that drops / corrupts / duplicates /
    // reorders / delays 10 % of frames, with a 16-retry budget.
    let cfg = base_config().with_channel(ChannelConfig {
        faults: FaultConfig::uniform(0.10),
        retry: RetryPolicy::with_retries(16),
        seed: 41,
    });
    let faulty = HybridLinkage::new(cfg).run(&d1, &d2).unwrap();

    // Quality is untouched: identical labels, nothing abandoned.
    assert_eq!(faulty.smc.matched_pairs, clean.smc.matched_pairs);
    assert_eq!(faulty.smc.invocations, clean.smc.invocations);
    assert_eq!(faulty.metrics.precision(), 1.0);
    assert_eq!(faulty.metrics.recall(), clean.metrics.recall());
    let deg = faulty.degradation();
    assert_eq!(deg.pairs_abandoned(), 0, "all faults absorbed by retries");
    assert_eq!(faulty.metrics.smc_abandoned, 0);

    // ...but the network really was hostile, and the link really worked.
    assert!(deg.injected.total() > 0, "faults were injected");
    assert!(
        deg.retries_spent > 0,
        "dropped frames forced retransmissions"
    );
    assert!(faulty.ledger.retries > 0);
    assert!(faulty.ledger.bytes_retransmitted > 0);

    // The clean run saw none of this.
    let clean_deg = clean.degradation();
    assert_eq!(clean_deg.injected.total(), 0);
    assert_eq!(clean_deg.retries_spent, 0);
    assert!(!clean_deg.degraded());
}

/// Runs the pipeline under a brutal network (35 % fault rate, at most one
/// retry per exchange) with the given strategy. The key broadcast gets its
/// own boosted retry budget, but it can still lose with an unlucky seed —
/// scan a few seeds until a run both completes and abandons pairs.
fn degraded_run(strategy: LabelingStrategy) -> pprl::core::LinkageOutcome {
    let (d1, d2) = scenario();
    for seed in 0..32u64 {
        let cfg = base_config()
            .with_strategy(strategy)
            .with_channel(ChannelConfig {
                faults: FaultConfig::uniform(0.35),
                retry: RetryPolicy::with_retries(1),
                seed,
            });
        match HybridLinkage::new(cfg).run(&d1, &d2) {
            Ok(out) if out.degradation().pairs_abandoned() > 0 => return out,
            // Broadcast lost, or (implausibly) every pair survived:
            // try the next fault seed.
            _ => continue,
        }
    }
    panic!("no seed produced a degraded-but-complete run");
}

#[test]
fn exhausted_retries_degrade_gracefully_under_maximize_precision() {
    let out = degraded_run(LabelingStrategy::MaximizePrecision);
    let deg = out.degradation();

    // Pairs were abandoned, charged against the allowance, and labeled
    // non-match: precision cannot suffer, by construction.
    assert!(deg.degraded());
    assert_eq!(out.metrics.precision(), 1.0);
    assert_eq!(out.metrics.smc_abandoned, deg.pairs_abandoned());
    assert!(
        deg.declared.is_empty(),
        "maximize-precision never declares abandoned pairs matching"
    );
    assert!(out.smc.invocations <= out.smc.budget);
    // No abandoned pair leaked into the protocol's match list.
    assert!(out.smc.matched_pairs.len() as u64 <= out.smc.invocations);
}

#[test]
fn exhausted_retries_declare_matches_under_maximize_recall() {
    let out = degraded_run(LabelingStrategy::MaximizeRecall);
    let deg = out.degradation();
    assert!(deg.degraded());
    assert_eq!(
        deg.declared.len() as u64,
        deg.pairs_abandoned(),
        "maximize-recall declares every abandoned pair matching"
    );
    // Declared pairs enter the declared-match count (and can cost
    // precision — that is the strategy's documented trade).
    assert!(out.metrics.declared_matches >= deg.declared.len() as u64);
}
