//! End-to-end test of the §VIII alphanumeric extension: edit-distance
//! linkage over typo-bearing surnames through the full hybrid pipeline.

use pprl::anon::KAnonymityRequirement;
use pprl::blocking::{AttrDistance, MatchingRule};
use pprl::data::names::{corrupt, fuzzy_pair_scenario, FuzzyScenarioConfig};
use pprl::prelude::*;
use pprl::smc::{SmcAllowance, SmcMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn edit_rule() -> MatchingRule {
    MatchingRule {
        thetas: vec![0.2, 0.05],
        distances: vec![
            AttrDistance::NormalizedEdit,
            AttrDistance::NormalizedEuclidean,
        ],
    }
}

fn config(allowance: SmcAllowance) -> LinkageConfig {
    let mut cfg = LinkageConfig::paper_defaults();
    cfg.qids = vec![0, 1];
    cfg.custom_rule = Some(edit_rule());
    cfg.k_r = KAnonymityRequirement(4);
    cfg.k_s = KAnonymityRequirement(4);
    cfg.allowance = allowance;
    cfg.mode = SmcMode::Oracle;
    cfg
}

#[test]
fn fuzzy_pipeline_is_precise_and_finds_typo_pairs() {
    let (d1, d2) = fuzzy_pair_scenario(&FuzzyScenarioConfig {
        records_per_set: 200,
        overlap: 0.4,
        typo_rate: 0.6,
        seed: 11,
    });
    let out = HybridLinkage::new(config(SmcAllowance::Unlimited))
        .run(&d1, &d2)
        .unwrap();
    assert_eq!(out.metrics.precision(), 1.0);
    assert_eq!(out.metrics.recall(), 1.0, "unlimited budget finds all");
    assert!(out.metrics.true_matches > 0);

    // At least one recovered pair must be a *non-identical* spelling pair
    // (an actual fuzzy match, impossible for exact-match methods).
    let schema = d1.schema();
    let tax = schema.attribute(0).vgh().as_taxonomy().unwrap().clone();
    let fuzzy_found = out.matched_rows().any(|(ri, si)| {
        let a = tax.label(tax.leaf_node(d1.records()[ri as usize].value(0).as_cat()));
        let b = tax.label(tax.leaf_node(d2.records()[si as usize].value(0).as_cat()));
        a != b
    });
    assert!(fuzzy_found, "typo'd shared records must be recovered");
}

#[test]
fn fuzzy_recall_grows_with_allowance() {
    let (d1, d2) = fuzzy_pair_scenario(&FuzzyScenarioConfig {
        records_per_set: 150,
        overlap: 0.4,
        typo_rate: 0.5,
        seed: 13,
    });
    let recall_at = |f: f64| {
        HybridLinkage::new(config(SmcAllowance::Fraction(f)))
            .run(&d1, &d2)
            .unwrap()
            .metrics
            .recall()
    };
    let (r0, r5, r100) = (recall_at(0.0), recall_at(0.05), recall_at(1.0));
    assert!(r0 <= r5 + 1e-12);
    assert!(r5 <= r100 + 1e-12);
    assert_eq!(r100, 1.0);
}

#[test]
fn corrupted_names_are_within_edit_threshold_of_originals() {
    // The scenario's typo model stays inside the matching threshold for
    // typical domain name lengths — so typo pairs are genuinely matchable.
    let mut rng = StdRng::seed_from_u64(17);
    for name in ["rodriguez", "smith", "nguyen", "washington"] {
        let bad = corrupt(name, &mut rng);
        let d = pprl::blocking::edit_distance(name, &bad);
        assert!(d <= 2, "{name} -> {bad}");
    }
}
