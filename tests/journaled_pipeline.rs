//! Tier-1 contract for the durable run journal: a journaled run is the
//! plain pipeline plus a transcript, resuming from any prefix of that
//! transcript reproduces the uninterrupted result exactly, and deadline
//! expiry degrades to the labeling strategy without costing precision.

use pprl::core::journal_run::{self, JournalOptions, K_SMC_OUTCOME};
use pprl::journal::recover;
use pprl::prelude::*;
use pprl::smc::{DeadlineBudget, SmcAllowance};
use std::path::PathBuf;

fn scenario(n: usize, seed: u64) -> (DataSet, DataSet) {
    SyntheticScenario::builder()
        .records_per_set(n)
        .seed(seed)
        .build()
        .data_sets()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pprl-journal-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn opts() -> JournalOptions {
    JournalOptions {
        checkpoint_every: 16,
        ..JournalOptions::default()
    }
}

/// Field-by-field equality of the parts of two outcomes that define the
/// linkage result (views and ledger objects carry no decision content
/// beyond what these cover).
fn assert_outcomes_equal(a: &LinkageOutcome, b: &LinkageOutcome) {
    assert_eq!(a.blocking.matched, b.blocking.matched);
    assert_eq!(a.blocking.unknown, b.blocking.unknown);
    assert_eq!(a.smc, b.smc);
    assert_eq!(a.leftover_labels, b.leftover_labels);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn journaled_run_equals_plain_run() {
    let (d1, d2) = scenario(250, 131);
    let cfg = LinkageConfig::paper_defaults().with_k(8);
    let pipeline = HybridLinkage::new(cfg);
    let plain = pipeline.run(&d1, &d2).unwrap();
    let path = tmp("fresh.pprlj");
    let journaled = journal_run::run_journaled(&pipeline, &d1, &d2, &path, &opts()).unwrap();
    assert!(!journaled.resumed);
    assert_eq!(journaled.replayed_pairs, 0);
    assert_eq!(journaled.live_pairs, plain.smc.invocations);
    assert_outcomes_equal(&journaled.outcome, &plain);

    // The journal records exactly one outcome frame per comparison, with
    // no duplicates — proof nothing was executed twice.
    let recovered = recover(&path).unwrap();
    let outcomes: Vec<_> = recovered
        .frames
        .iter()
        .filter(|f| f.kind == K_SMC_OUTCOME)
        .collect();
    assert_eq!(outcomes.len() as u64, plain.smc.invocations);
    let mut pairs: Vec<&Vec<u8>> = outcomes.iter().map(|f| &f.payload).collect();
    pairs.sort();
    pairs.dedup();
    assert_eq!(pairs.len() as u64, plain.smc.invocations);
}

/// Kill the journal at every frame boundary (simulated by truncation) and
/// resume: the final result must be identical to the uninterrupted run and
/// the journal must never re-record a completed pair.
#[test]
fn resume_from_any_truncation_point_equals_one_shot() {
    let (d1, d2) = scenario(150, 137);
    let cfg = LinkageConfig::paper_defaults()
        .with_k(8)
        .with_allowance(SmcAllowance::Pairs(400));
    let pipeline = HybridLinkage::new(cfg);
    let path = tmp("truncate.pprlj");
    let full = journal_run::run_journaled(&pipeline, &d1, &d2, &path, &opts()).unwrap();
    let image = std::fs::read(&path).unwrap();
    let total = full.outcome.smc.invocations;

    // Cut at uneven byte offsets across the file, including mid-frame
    // positions (torn tail) and the pristine end.
    let cuts: Vec<usize> = (0..8)
        .map(|i| 18 + (image.len() - 18) * i / 7)
        .chain([image.len().saturating_sub(3)])
        .collect();
    for cut in cuts {
        let partial = tmp("truncate-resume.pprlj");
        std::fs::write(&partial, &image[..cut]).unwrap();
        let resumed = journal_run::resume(&pipeline, &d1, &d2, &partial, &opts()).unwrap();
        assert!(resumed.resumed);
        assert_outcomes_equal(&resumed.outcome, &full.outcome);
        assert_eq!(
            resumed.restored_pairs + resumed.replayed_pairs + resumed.live_pairs,
            total,
            "every comparison is restored, replayed, or executed exactly once (cut {cut})"
        );
        // The re-finished journal holds one frame per comparison, unique.
        let recovered = recover(&partial).unwrap();
        let mut outcome_payloads: Vec<Vec<u8>> = recovered
            .frames
            .iter()
            .filter(|f| f.kind == K_SMC_OUTCOME)
            .map(|f| f.payload.clone())
            .collect();
        assert_eq!(outcome_payloads.len() as u64, total, "cut {cut}");
        outcome_payloads.sort();
        outcome_payloads.dedup();
        assert_eq!(outcome_payloads.len() as u64, total, "cut {cut}");
    }
}

#[test]
fn resume_rejects_a_journal_from_a_different_job() {
    let (d1, d2) = scenario(120, 139);
    let pipeline = HybridLinkage::new(LinkageConfig::paper_defaults().with_k(8));
    let path = tmp("fingerprint.pprlj");
    journal_run::run_journaled(&pipeline, &d1, &d2, &path, &opts()).unwrap();
    // Same journal, different k ⇒ different fingerprint ⇒ refused.
    let other = HybridLinkage::new(LinkageConfig::paper_defaults().with_k(16));
    let err = journal_run::resume(&other, &d1, &d2, &path, &opts()).unwrap_err();
    assert!(
        err.to_string().contains("fingerprint"),
        "unexpected error: {err}"
    );
}

/// The deadline budget degrades, never corrupts: with a virtual deadline
/// that expires mid-SMC, the remaining in-allowance pairs are labeled by
/// maximize-precision (non-match), so precision stays 1.0 and the report
/// attributes the abandonment to the deadline, not the transport.
#[test]
fn deadline_expiry_degrades_to_strategy_without_losing_precision() {
    let (d1, d2) = scenario(200, 149);
    let cfg = LinkageConfig::paper_defaults()
        .with_k(8)
        .with_deadline(DeadlineBudget::VirtualMs {
            budget_ms: 40,
            cost_per_pair_ms: 1,
        });
    let out = HybridLinkage::new(cfg.clone()).run(&d1, &d2).unwrap();
    assert!(
        out.metrics.deadline_abandoned > 0,
        "the virtual deadline must expire mid-SMC for this test to bite"
    );
    assert_eq!(out.metrics.smc_abandoned, 0, "no transport abandonment");
    assert_eq!(out.metrics.precision(), 1.0);
    let no_deadline = HybridLinkage::new(cfg.with_deadline(DeadlineBudget::None))
        .run(&d1, &d2)
        .unwrap();
    assert!(out.metrics.recall() <= no_deadline.metrics.recall() + 1e-12);

    // Deterministic virtual time ⇒ resume ≡ one-shot holds even for
    // deadline-degraded journaled runs.
    let cfg = LinkageConfig::paper_defaults()
        .with_k(8)
        .with_deadline(DeadlineBudget::VirtualMs {
            budget_ms: 40,
            cost_per_pair_ms: 1,
        });
    let pipeline = HybridLinkage::new(cfg);
    let path = tmp("deadline.pprlj");
    let full = journal_run::run_journaled(&pipeline, &d1, &d2, &path, &opts()).unwrap();
    assert_outcomes_equal(&full.outcome, &out);
    let image = std::fs::read(&path).unwrap();
    let partial = tmp("deadline-resume.pprlj");
    std::fs::write(&partial, &image[..18 + (image.len() - 18) / 2]).unwrap();
    let resumed = journal_run::resume(&pipeline, &d1, &d2, &partial, &opts()).unwrap();
    assert_outcomes_equal(&resumed.outcome, &out);
}
