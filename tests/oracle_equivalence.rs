//! The central substitution argument (DESIGN.md #2): the SMC oracle used by
//! the sweeps is *bit-identical* to the real Paillier protocol. This test
//! runs the full pipeline in both modes and compares everything observable.

use pprl::prelude::*;
use pprl::smc::{SmcAllowance, SmcMode};

#[test]
fn pipeline_oracle_equals_pipeline_paillier() {
    let (d1, d2) = SyntheticScenario::builder()
        .records_per_set(120)
        .seed(7_771)
        .build()
        .data_sets();

    let base = LinkageConfig::paper_defaults()
        .with_k(8)
        .with_allowance(SmcAllowance::Pairs(60)); // keep real crypto quick

    let mut oracle_cfg = base.clone();
    oracle_cfg.mode = SmcMode::Oracle;
    let oracle = HybridLinkage::new(oracle_cfg).run(&d1, &d2).unwrap();

    let mut crypto_cfg = base;
    crypto_cfg.mode = SmcMode::Paillier {
        modulus_bits: 256,
        seed: 99,
    };
    let crypto = HybridLinkage::new(crypto_cfg).run(&d1, &d2).unwrap();

    // Identical labels everywhere.
    assert_eq!(oracle.smc.matched_pairs, crypto.smc.matched_pairs);
    assert_eq!(oracle.smc.invocations, crypto.smc.invocations);
    assert_eq!(
        oracle.metrics.true_positives,
        crypto.metrics.true_positives
    );
    assert_eq!(
        oracle.metrics.declared_matches,
        crypto.metrics.declared_matches
    );
    assert_eq!(oracle.metrics.recall(), crypto.metrics.recall());

    // And only the crypto run did cryptographic work.
    assert_eq!(oracle.ledger.encryptions, 0);
    assert!(crypto.ledger.encryptions > 0);
    assert!(crypto.ledger.decryptions > 0);
}

#[test]
fn pipeline_oracle_equals_batched_paillier_over_faulty_transport() {
    // The substitution argument survives a hostile network: the batched
    // wire protocol behind a channel that drops / corrupts / duplicates /
    // reorders 10 % of frames (with retries) still produces labels
    // bit-identical to the oracle.
    use pprl::smc::{ChannelConfig, FaultConfig, RetryPolicy};

    let (d1, d2) = SyntheticScenario::builder()
        .records_per_set(120)
        .seed(7_771)
        .build()
        .data_sets();

    let base = LinkageConfig::paper_defaults()
        .with_k(8)
        .with_allowance(SmcAllowance::Pairs(60));

    let oracle = HybridLinkage::new(base.clone().with_mode(SmcMode::Oracle))
        .run(&d1, &d2)
        .unwrap();

    let crypto_cfg = base
        .with_mode(SmcMode::PaillierBatched {
            modulus_bits: 256,
            seed: 99,
            pack: false,
        })
        .with_channel(ChannelConfig {
            faults: FaultConfig::uniform(0.10),
            retry: RetryPolicy::with_retries(16),
            seed: 41,
        });
    let crypto = HybridLinkage::new(crypto_cfg).run(&d1, &d2).unwrap();

    assert_eq!(oracle.smc.matched_pairs, crypto.smc.matched_pairs);
    assert_eq!(oracle.smc.invocations, crypto.smc.invocations);
    assert_eq!(oracle.smc.leftovers, crypto.smc.leftovers);
    assert_eq!(oracle.metrics, crypto.metrics);

    // The faults were real — the equivalence is retry-earned, not vacuous.
    assert!(crypto.degradation().injected.total() > 0);
    assert_eq!(crypto.degradation().pairs_abandoned(), 0);
}

#[test]
fn secure_comparison_equals_plaintext_on_grid() {
    // Exhaustive per-attribute check on a value grid: the protocol's
    // predicate (a−b)² ≤ t agrees with the plaintext predicate.
    use pprl::crypto::protocol::secure_threshold_match;
    use pprl::crypto::{CostLedger, Keypair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(4_242);
    let keys = Keypair::generate(&mut rng, 256);
    let mut ledger = CostLedger::new();
    for a in (0..60u64).step_by(7) {
        for b in (0..60u64).step_by(11) {
            for t in [0u64, 9, 23, 100] {
                let secure = secure_threshold_match(
                    keys.public(),
                    keys.private(),
                    a,
                    b,
                    t,
                    &mut rng,
                    &mut ledger,
                )
                .unwrap();
                assert_eq!(secure, a.abs_diff(b).pow(2) <= t, "a={a} b={b} t={t}");
            }
        }
    }
}
