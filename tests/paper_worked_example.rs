//! Reconstructs the paper's §III worked example *exactly* — Tables I and
//! II over the Fig. 1 VGHs — and checks every number the paper derives:
//! 6 pairs matched, 12 mismatched, 18 unknown, 50 % blocking efficiency.

use pprl::anon::{AnonymizedView, GenVal};
use pprl::blocking::{AttrDistance, BlockingEngine, MatchingRule};
use pprl::data::{DataSet, Record, Schema, Value};
use pprl::hierarchy::{IntervalHierarchy, IntervalSpec, TaxSpec, Taxonomy, Vgh};
use std::sync::Arc;

/// Fig. 1 Education VGH.
fn education() -> Taxonomy {
    Taxonomy::from_spec(
        "education",
        &TaxSpec::node(
            "ANY",
            vec![
                TaxSpec::node(
                    "Secondary",
                    vec![
                        TaxSpec::node("Junior Sec.", vec![TaxSpec::leaf("9th"), TaxSpec::leaf("10th")]),
                        TaxSpec::node("Senior Sec.", vec![TaxSpec::leaf("11th"), TaxSpec::leaf("12th")]),
                    ],
                ),
                TaxSpec::node(
                    "University",
                    vec![
                        TaxSpec::leaf("Bachelors"),
                        TaxSpec::node(
                            "Grad School",
                            vec![TaxSpec::leaf("Masters"), TaxSpec::leaf("Doctorate")],
                        ),
                    ],
                ),
            ],
        ),
    )
    .unwrap()
}

/// Fig. 1 Work Hrs VGH: ANY [1-99) → { [1-37) → { [1-35), [35-37) }, [37-99) }.
fn work_hrs() -> IntervalHierarchy {
    IntervalHierarchy::from_spec(
        "work-hrs",
        &IntervalSpec::node(
            1.0,
            99.0,
            vec![
                IntervalSpec::node(
                    1.0,
                    37.0,
                    vec![IntervalSpec::leaf(1.0, 35.0), IntervalSpec::leaf(35.0, 37.0)],
                ),
                IntervalSpec::leaf(37.0, 99.0),
            ],
        ),
    )
    .unwrap()
}

struct Example {
    r: DataSet,
    s: DataSet,
    r_view: AnonymizedView,
    s_view: AnonymizedView,
    rule: MatchingRule,
}

fn build() -> Example {
    let edu = education();
    let schema = Schema::new(
        vec![Vgh::Categorical(edu.clone()), Vgh::Continuous(work_hrs())],
        vec!["-".into()],
    );
    let leaf = |label: &str| edu.leaf_position(label).unwrap();
    let node = |label: &str| edu.node_by_label(label).unwrap();

    // Table I: R = {(Masters,35),(Masters,36),(Masters,36),(9th,28),(10th,22),(12th,33)}
    let r_rows = [
        (leaf("Masters"), 35.0),
        (leaf("Masters"), 36.0),
        (leaf("Masters"), 36.0),
        (leaf("9th"), 28.0),
        (leaf("10th"), 22.0),
        (leaf("12th"), 33.0),
    ];
    // Table II: S = {(Masters,36),(Masters,35),(Bachelors,27),(11th,33),(11th,22),(12th,27)}
    let s_rows = [
        (leaf("Masters"), 36.0),
        (leaf("Masters"), 35.0),
        (leaf("Bachelors"), 27.0),
        (leaf("11th"), 33.0),
        (leaf("11th"), 22.0),
        (leaf("12th"), 27.0),
    ];
    let mk = |rows: &[(u32, f64)], base: u64| -> Vec<Record> {
        rows.iter()
            .enumerate()
            .map(|(i, &(cat, num))| {
                Record::new(base + i as u64, vec![Value::Cat(cat), Value::Num(num)], 0)
            })
            .collect()
    };
    let r = DataSet::new("R", Arc::clone(&schema), mk(&r_rows, 0)).unwrap();
    let s = DataSet::new("S", Arc::clone(&schema), mk(&s_rows, 100)).unwrap();

    // R' (3-anonymous): r1–r3 → (Masters, [35-37)); r4–r6 → (Secondary, [1-35)).
    let masters_3537 = vec![
        GenVal::Cat(node("Masters")),
        GenVal::Range { lo: 35.0, hi: 37.0 },
    ];
    let secondary_135 = vec![
        GenVal::Cat(node("Secondary")),
        GenVal::Range { lo: 1.0, hi: 35.0 },
    ];
    let r_view = AnonymizedView::from_assignments(
        &r,
        vec![0, 1],
        vec![
            (0, masters_3537.clone()),
            (1, masters_3537.clone()),
            (2, masters_3537.clone()),
            (3, secondary_135.clone()),
            (4, secondary_135.clone()),
            (5, secondary_135.clone()),
        ],
        vec![],
    );
    // S' (2-anonymous): s1,s2 → (Masters,[35-37)); s3,s4 → (ANY,[1-35));
    // s5,s6 → (Senior Sec.,[1-35)).
    let any_135 = vec![
        GenVal::Cat(node("ANY")),
        GenVal::Range { lo: 1.0, hi: 35.0 },
    ];
    let senior_135 = vec![
        GenVal::Cat(node("Senior Sec.")),
        GenVal::Range { lo: 1.0, hi: 35.0 },
    ];
    let s_view = AnonymizedView::from_assignments(
        &s,
        vec![0, 1],
        vec![
            (0, masters_3537.clone()),
            (1, masters_3537),
            (2, any_135.clone()),
            (3, any_135),
            (4, senior_135.clone()),
            (5, senior_135),
        ],
        vec![],
    );

    // θ₁ = 0.5 Hamming on Education, θ₂ = 0.2 Euclidean on Work Hrs.
    let rule = MatchingRule {
        thetas: vec![0.5, 0.2],
        distances: vec![AttrDistance::Hamming, AttrDistance::NormalizedEuclidean],
    };
    Example {
        r,
        s,
        r_view,
        s_view,
        rule,
    }
}

#[test]
fn blocking_reproduces_the_papers_counts() {
    let ex = build();
    let out = BlockingEngine::new(ex.rule.clone())
        .run(&ex.r_view, &ex.s_view)
        .unwrap();

    assert_eq!(out.total_pairs, 36, "|R| × |S| = 6 × 6");
    // §III: "12 record pairs can be mismatched and 6 record pairs can be
    // matched through the anonymized relations. Labels of the 18 remaining
    // record pairs are unknown."
    assert_eq!(out.matched_pairs, 6);
    assert_eq!(out.nonmatched_pairs, 12);
    assert_eq!(out.unknown_pairs, 18);
    // "the blocking efficiency would be 50%".
    assert!((out.efficiency() - 0.5).abs() < 1e-12);
}

#[test]
fn ground_truth_and_full_recall_with_unbounded_smc() {
    use pprl::core::GroundTruth;
    use pprl::smc::{
        DeadlineBudget, LabelingStrategy, SelectionHeuristic, SmcAllowance, SmcMode, SmcStep,
    };

    let ex = build();
    let truth = GroundTruth::compute(&ex.r, &ex.s, &[0, 1], &ex.rule);
    // True matches: the 6 Masters pairs (r1-r3 × s1-s2) plus (r6=12th,33 ×
    // s6=12th,27): |33-27| = 6 ≤ 0.2·98 = 19.6.
    assert_eq!(truth.total_matches(), 7);

    let blocking = BlockingEngine::new(ex.rule.clone())
        .run(&ex.r_view, &ex.s_view)
        .unwrap();
    let step = SmcStep {
        heuristic: SelectionHeuristic::MinAvgFirst,
        allowance: SmcAllowance::Unlimited,
        strategy: LabelingStrategy::MaximizePrecision,
        mode: SmcMode::Oracle,
        channel: None,
        deadline: DeadlineBudget::None,
    };
    let smc = step
        .run(
            &ex.r,
            &ex.s,
            &ex.r_view,
            &ex.s_view,
            &blocking.unknown,
            &ex.rule,
            blocking.total_pairs,
        )
        .unwrap();
    // The 18 unknown pairs hide exactly one further match: (r6, s6).
    assert_eq!(smc.invocations, 18);
    assert_eq!(smc.matched_pairs, vec![(5, 5)]);
    assert_eq!(blocking.matched_pairs + smc.matched_pairs.len() as u64, 7);
}

#[test]
fn papers_budget_of_ten_covers_part_of_the_unknowns() {
    use pprl::smc::{
        DeadlineBudget, LabelingStrategy, SelectionHeuristic, SmcAllowance, SmcMode, SmcStep,
    };

    // §III: "suppose that due to high costs, the participants can endure
    // comparing at most 10 of these pairs with SMC protocols" — the other 8
    // are labeled non-match (maximize precision).
    let ex = build();
    let blocking = BlockingEngine::new(ex.rule.clone())
        .run(&ex.r_view, &ex.s_view)
        .unwrap();
    let step = SmcStep {
        heuristic: SelectionHeuristic::MinAvgFirst,
        allowance: SmcAllowance::Pairs(10),
        strategy: LabelingStrategy::MaximizePrecision,
        mode: SmcMode::Oracle,
        channel: None,
        deadline: DeadlineBudget::None,
    };
    let smc = step
        .run(
            &ex.r,
            &ex.s,
            &ex.r_view,
            &ex.s_view,
            &blocking.unknown,
            &ex.rule,
            blocking.total_pairs,
        )
        .unwrap();
    assert_eq!(smc.invocations, 10);
    let leftover: u64 = smc
        .leftovers
        .iter()
        .map(|l| l.class_pair.pairs - l.skip)
        .sum();
    assert_eq!(leftover, 8);
}
