//! Property-based cross-crate invariants of the hybrid pipeline.

use pprl::anon::AnonymizationMethod;
use pprl::prelude::*;
use pprl::smc::{SmcAllowance, SmcMode};
use proptest::prelude::*;

fn any_method() -> impl Strategy<Value = AnonymizationMethod> {
    prop_oneof![
        Just(AnonymizationMethod::Datafly),
        Just(AnonymizationMethod::Tds),
        Just(AnonymizationMethod::MaxEntropy),
        Just(AnonymizationMethod::Mondrian),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The paper's headline guarantee: precision is 100 % regardless of
    /// anonymizer, k, θ, heuristic, or budget (strategy 1).
    #[test]
    fn precision_is_always_one(
        seed in 0u64..1000,
        k in 2usize..40,
        theta in 0.01f64..0.12,
        budget in 0u64..5_000,
        method_r in any_method(),
        method_s in any_method(),
        qid_count in 2usize..6,
    ) {
        let (d1, d2) = SyntheticScenario::builder()
            .records_per_set(120)
            .seed(seed)
            .build()
            .data_sets();
        let mut cfg = LinkageConfig::paper_defaults()
            .with_k(k)
            .with_theta(theta)
            .with_qid_count(qid_count)
            .with_allowance(SmcAllowance::Pairs(budget));
        cfg.method_r = method_r;
        cfg.method_s = method_s;
        cfg.mode = SmcMode::Oracle;
        let out = HybridLinkage::new(cfg).run(&d1, &d2).unwrap();
        prop_assert_eq!(out.metrics.precision(), 1.0);
        // Cost accounting invariants.
        prop_assert!(out.metrics.smc_invocations <= budget);
        prop_assert!(out.metrics.recall() <= 1.0 + 1e-12);
        // Pair accounting: everything sums to |R|·|S|.
        prop_assert_eq!(
            out.blocking.matched_pairs
                + out.blocking.nonmatched_pairs
                + out.blocking.unknown_pairs,
            out.blocking.total_pairs
        );
    }

    /// Blocking M-labels are sound under arbitrary configurations: all
    /// blocking-matched pairs are true matches (tp ≥ blocking_matched).
    #[test]
    fn blocking_matches_are_true_positives(
        seed in 0u64..1000,
        k in 2usize..24,
    ) {
        let (d1, d2) = SyntheticScenario::builder()
            .records_per_set(100)
            .seed(seed)
            .build()
            .data_sets();
        let cfg = LinkageConfig::paper_defaults()
            .with_k(k)
            .with_allowance(SmcAllowance::Pairs(0));
        let out = HybridLinkage::new(cfg).run(&d1, &d2).unwrap();
        // With zero budget, declared = blocking matches only, and precision
        // is 1 — so every blocking match is true.
        prop_assert_eq!(out.metrics.declared_matches, out.metrics.blocking_matched);
        prop_assert_eq!(out.metrics.true_positives, out.metrics.blocking_matched);
        prop_assert!(out.metrics.true_matches >= out.metrics.blocking_matched);
    }

    /// The worker-thread count is unobservable in the output: metrics,
    /// leftover labels, the match set, and even the run journal's bytes
    /// are identical to the sequential run at any thread count.
    #[test]
    fn thread_count_is_unobservable(
        seed in 0u64..500,
        k in 2usize..24,
        threads in 2usize..9,
        budget in 0u64..3_000,
        method in any_method(),
    ) {
        use pprl::core::journal_run::{run_journaled, JournalOptions};

        let (d1, d2) = SyntheticScenario::builder()
            .records_per_set(90)
            .seed(seed)
            .build()
            .data_sets();
        let mut cfg = LinkageConfig::paper_defaults()
            .with_k(k)
            .with_allowance(SmcAllowance::Pairs(budget));
        cfg.method_r = method;
        cfg.method_s = method;
        let seq = HybridLinkage::new(cfg.clone()).run(&d1, &d2).unwrap();
        let par = HybridLinkage::new(cfg.clone())
            .with_threads(threads)
            .run(&d1, &d2)
            .unwrap();
        prop_assert_eq!(&par.metrics, &seq.metrics);
        prop_assert_eq!(&par.leftover_labels, &seq.leftover_labels);
        prop_assert_eq!(
            par.matched_rows().collect::<Vec<_>>(),
            seq.matched_rows().collect::<Vec<_>>()
        );

        // Journaled variant: frame-for-frame byte identity.
        let dir = std::env::temp_dir().join("pprl-thread-equiv");
        std::fs::create_dir_all(&dir).unwrap();
        let p_seq = dir.join(format!("{seed}-{k}-{budget}-{threads}-seq.pprlj"));
        let p_par = dir.join(format!("{seed}-{k}-{budget}-{threads}-par.pprlj"));
        let jopts = JournalOptions::default();
        run_journaled(&HybridLinkage::new(cfg.clone()), &d1, &d2, &p_seq, &jopts).unwrap();
        run_journaled(
            &HybridLinkage::new(cfg).with_threads(threads),
            &d1,
            &d2,
            &p_par,
            &jopts,
        )
        .unwrap();
        let (a, b) = (std::fs::read(&p_seq).unwrap(), std::fs::read(&p_par).unwrap());
        let _ = std::fs::remove_file(&p_seq);
        let _ = std::fs::remove_file(&p_par);
        prop_assert_eq!(a, b, "journal bytes must not depend on thread count");
    }

    /// Unlimited budget ⇒ recall 1 (the blocking N-labels are sound, so no
    /// true match can be lost outside the SMC-covered region).
    #[test]
    fn unlimited_budget_recovers_every_match(
        seed in 0u64..500,
        k in 2usize..24,
        method in any_method(),
    ) {
        let (d1, d2) = SyntheticScenario::builder()
            .records_per_set(90)
            .seed(seed)
            .build()
            .data_sets();
        let mut cfg = LinkageConfig::paper_defaults()
            .with_k(k)
            .with_allowance(SmcAllowance::Unlimited);
        cfg.method_r = method;
        cfg.method_s = method;
        let out = HybridLinkage::new(cfg).run(&d1, &d2).unwrap();
        prop_assert_eq!(out.metrics.recall(), 1.0);
        prop_assert_eq!(out.metrics.precision(), 1.0);
    }
}
