//! Resumable SMC sessions: interrupting a run at a checkpoint — including
//! a full encode-to-bytes / decode crash simulation through the canonical
//! binary session codec — and resuming
//! must yield exactly the labels and allowance spend of an uninterrupted
//! run, without re-running or double-charging any record pair.

use pprl::blocking::{BlockingEngine, ClassPairRef, MatchingRule};
use pprl::prelude::*;
use pprl::smc::{
    ChannelConfig, DeadlineBudget, FaultConfig, LabelingStrategy, RetryPolicy,
    SelectionHeuristic, SmcAllowance, SmcMode, SmcSession, SmcStep,
};

struct Fixture {
    d1: DataSet,
    d2: DataSet,
    v1: pprl::anon::AnonymizedView,
    v2: pprl::anon::AnonymizedView,
    unknown: Vec<ClassPairRef>,
    rule: MatchingRule,
    total: u64,
}

fn fixture() -> Fixture {
    let (d1, d2) = SyntheticScenario::builder()
        .records_per_set(150)
        .seed(8_881)
        .build()
        .data_sets();
    let qids: Vec<usize> = (0..5).collect();
    let anon = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(8));
    let v1 = anon.anonymize(&d1, &qids).unwrap();
    let v2 = anon.anonymize(&d2, &qids).unwrap();
    let rule = MatchingRule::uniform(d1.schema(), &qids, 0.05);
    let out = BlockingEngine::new(rule.clone()).run(&v1, &v2).unwrap();
    Fixture {
        total: out.total_pairs,
        unknown: out.unknown,
        d1,
        d2,
        v1,
        v2,
        rule,
    }
}

fn step(mode: SmcMode, channel: Option<ChannelConfig>) -> SmcStep {
    SmcStep {
        heuristic: SelectionHeuristic::MinAvgFirst,
        allowance: SmcAllowance::Pairs(250),
        strategy: LabelingStrategy::MaximizePrecision,
        mode,
        channel,
        deadline: DeadlineBudget::None,
    }
}

#[test]
fn oracle_interrupt_at_every_checkpoint_equals_one_shot() {
    let f = fixture();
    let s = step(SmcMode::Oracle, None);
    let full = s
        .run(&f.d1, &f.d2, &f.v1, &f.v2, &f.unknown, &f.rule, f.total)
        .unwrap();

    // Crash after every single pair: checkpoint, encode with the canonical
    // binary codec, drop the runner, decode, resume.
    let mut snapshot: Option<Vec<u8>> = None;
    let resumed = loop {
        let mut runner = match snapshot.take() {
            None => s
                .start(&f.d1, &f.d2, &f.v1, &f.v2, &f.unknown, &f.rule, f.total)
                .unwrap(),
            Some(bytes) => {
                let session: SmcSession = pprl::smc::decode_session(&bytes).unwrap();
                s.resume(session, &f.d1, &f.d2, &f.v1, &f.v2, &f.unknown, &f.rule, f.total)
                    .unwrap()
            }
        };
        if runner.step_pairs(1).unwrap() == 0 {
            break runner.finish();
        }
        snapshot = Some(pprl::smc::encode_session(&runner.checkpoint()));
    };

    // Bit-identical outcome: labels, stats, leftovers, budget accounting.
    assert_eq!(resumed, full);
}

#[test]
fn crypto_over_faulty_transport_resumes_without_double_charging() {
    let f = fixture();
    let channel = Some(ChannelConfig {
        faults: FaultConfig::uniform(0.05),
        retry: RetryPolicy::with_retries(16),
        seed: 17,
    });
    let mode = SmcMode::PaillierBatched {
        modulus_bits: 256,
        seed: 5,
        pack: false,
    };
    let mut s = step(mode, channel);
    s.allowance = SmcAllowance::Pairs(40); // keep real crypto quick

    let full = s
        .run(&f.d1, &f.d2, &f.v1, &f.v2, &f.unknown, &f.rule, f.total)
        .unwrap();

    // Interrupt every 7 pairs. Each resume re-broadcasts the public key
    // (honest session setup cost), so wire-byte totals differ — but the
    // labels and the allowance spend must be identical.
    let mut snapshot: Option<Vec<u8>> = None;
    let resumed = loop {
        let mut runner = match snapshot.take() {
            None => s
                .start(&f.d1, &f.d2, &f.v1, &f.v2, &f.unknown, &f.rule, f.total)
                .unwrap(),
            Some(bytes) => {
                let session: SmcSession = pprl::smc::decode_session(&bytes).unwrap();
                s.resume(session, &f.d1, &f.d2, &f.v1, &f.v2, &f.unknown, &f.rule, f.total)
                    .unwrap()
            }
        };
        if runner.step_pairs(7).unwrap() == 0 {
            break runner.finish();
        }
        snapshot = Some(pprl::smc::encode_session(&runner.checkpoint()));
    };

    assert_eq!(resumed.matched_pairs, full.matched_pairs);
    assert_eq!(resumed.invocations, full.invocations);
    assert_eq!(resumed.leftovers, full.leftovers);
    assert_eq!(resumed.examined, full.examined);
    assert_eq!(resumed.budget, full.budget);
    assert_eq!(
        resumed.ledger.invocations, full.ledger.invocations,
        "no pair compared twice"
    );
}

#[test]
fn resume_against_changed_configuration_is_rejected() {
    let f = fixture();
    let s = step(SmcMode::Oracle, None);
    let mut runner = s
        .start(&f.d1, &f.d2, &f.v1, &f.v2, &f.unknown, &f.rule, f.total)
        .unwrap();
    runner.step_pairs(3).unwrap();
    let session = runner.checkpoint();

    let mut other = s;
    other.allowance = SmcAllowance::Pairs(999);
    let err = match other.resume(session, &f.d1, &f.d2, &f.v1, &f.v2, &f.unknown, &f.rule, f.total)
    {
        Err(e) => e,
        Ok(_) => panic!("resume with a changed configuration succeeded"),
    };
    assert!(matches!(err, pprl::smc::SmcError::SessionMismatch(_)));
}
